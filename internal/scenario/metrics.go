package scenario

import (
	"sort"
	"time"

	"repro/internal/measure"
	"repro/internal/stats"
)

// verdictClasses is the number of measure.Verdict values; ClassCounts is
// indexed by Verdict.
const verdictClasses = int(measure.Anomalous) + 1

// MonthMetrics is one virtual month of ecosystem-wide measurements. All
// fields merge by addition across site shards, so fleet-scale results
// are independent of scheduling and worker count.
type MonthMetrics struct {
	// Month is the tick index; Label and Date locate it on the calendar.
	Month int
	Label string
	Date  time.Time

	// AdoptedSites counts sites whose robots.txt restricts AI crawlers
	// by the end of the month; ManagedSites the subset on a managed
	// service; ActiveBlockers the sites with provider blocking enabled.
	AdoptedSites   int
	ManagedSites   int
	ActiveBlockers int

	// Visits counts crawl waves; RobotsFetches counts robots.txt
	// requests observed in the logs.
	Visits        int
	RobotsFetches int

	// ClassCounts tallies per-(crawler, site) monthly verdict
	// classifications on policy-bearing sites, indexed by
	// measure.Verdict.
	ClassCounts [verdictClasses]int

	// DisallowedBytes is content served from paths the site's robots.txt
	// disallowed for the fetching agent — the ground-truth violation
	// volume. AllowedBytes is everything else served with HTTP 200.
	DisallowedBytes int64
	AllowedBytes    int64

	// BlockedRequests counts requests the active-blocking provider
	// denied.
	BlockedRequests int

	// GapMissing and GapAnnounced accumulate the static rule-list
	// coverage gap over adopted sites (GapSites of them) as integer
	// tallies — announced-but-uncovered agents and announced agents —
	// rather than a float sum of per-site fractions. The announced count
	// is the same for every site within a month, so StaticGap's
	// missing/announced ratio equals the old per-site mean, and keeping
	// every field integral makes merges exactly order-free: tiered,
	// sharded, and sequential runs are bit-identical, not
	// almost-identical up to float association.
	GapMissing   int
	GapAnnounced int
	GapSites     int
}

// add merges another shard's metrics for the same month.
func (m *MonthMetrics) add(o MonthMetrics) {
	m.AdoptedSites += o.AdoptedSites
	m.ManagedSites += o.ManagedSites
	m.ActiveBlockers += o.ActiveBlockers
	m.Visits += o.Visits
	m.RobotsFetches += o.RobotsFetches
	for i := range m.ClassCounts {
		m.ClassCounts[i] += o.ClassCounts[i]
	}
	m.DisallowedBytes += o.DisallowedBytes
	m.AllowedBytes += o.AllowedBytes
	m.BlockedRequests += o.BlockedRequests
	m.GapMissing += o.GapMissing
	m.GapAnnounced += o.GapAnnounced
	m.GapSites += o.GapSites
}

// Classified returns how many (crawler, site) windows were classified
// this month.
func (m MonthMetrics) Classified() int {
	n := 0
	for _, c := range m.ClassCounts {
		n += c
	}
	return n
}

// RespectRate is the fraction of classified windows in the Respected
// class, in [0, 1].
func (m MonthMetrics) RespectRate() float64 {
	if n := m.Classified(); n > 0 {
		return float64(m.ClassCounts[measure.Respected]) / float64(n)
	}
	return 0
}

// StaticGap is the mean coverage gap of the adopted sites' rule lists:
// the fraction of announced blockable agents their robots.txt misses.
func (m MonthMetrics) StaticGap() float64 {
	if m.GapAnnounced == 0 {
		return 0
	}
	return float64(m.GapMissing) / float64(m.GapAnnounced)
}

// Result is one completed scenario run.
type Result struct {
	// Spec is the fully defaulted spec that ran.
	Spec Spec
	// StartDate anchors the virtual clock.
	StartDate time.Time
	// Months holds one metrics row per virtual month.
	Months []MonthMetrics
	// Verdicts classifies each observed product token over the whole
	// run, from evidence aggregated across every policy-bearing site —
	// the Table 1 classes, derived from simulated server logs alone.
	Verdicts map[string]measure.Verdict

	// Run-level totals.
	TotalVisits          int
	TotalDisallowedBytes int64
	TotalBlockedRequests int
}

// newResult allocates the month skeleton for a defaulted spec. Both
// engines (full-fidelity Run and tiered RunTiered) assemble into this
// same shape, which is what lets the parity suite DeepEqual them.
func newResult(sp Spec, start time.Time) *Result {
	res := &Result{Spec: sp, StartDate: start, Months: make([]MonthMetrics, sp.Months)}
	for m := range res.Months {
		d := start.AddDate(0, m, 0)
		res.Months[m] = MonthMetrics{Month: m, Label: d.Format("Jan 2006"), Date: d}
	}
	return res
}

// An Observer receives a run's semantic outputs as the engine finalizes
// them: one ObserveMonth call per merged month in month order, then one
// ObserveResult with the completed result. Both engines (Run and
// RunTiered) fire the same hooks from the shared finalize path, so an
// observer — the runstore writer is the canonical one — sees identical
// streams whichever engine produced the run. Observers run on the
// finalizing goroutine after the parallel pass has joined; they need no
// locking of their own.
type Observer interface {
	ObserveMonth(m MonthMetrics)
	ObserveResult(r *Result)
}

// finalize classifies the merged run-wide evidence, computes the
// run-level totals from the merged months, and streams the finished
// months and result to the observer, if any.
func (r *Result) finalize(evidence map[string]measure.Evidence, ob Observer) {
	r.Verdicts = make(map[string]measure.Verdict, len(evidence))
	for tok, ev := range evidence {
		r.Verdicts[tok] = measure.ClassifyEvidence(ev)
	}
	for _, m := range r.Months {
		r.TotalVisits += m.Visits
		r.TotalDisallowedBytes += m.DisallowedBytes
		r.TotalBlockedRequests += m.BlockedRequests
	}
	if ob != nil {
		for _, m := range r.Months {
			ob.ObserveMonth(m)
		}
		ob.ObserveResult(r)
	}
}

// Tokens returns the observed product tokens, sorted.
func (r *Result) Tokens() []string {
	out := make([]string, 0, len(r.Verdicts))
	for tok := range r.Verdicts {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// series assembles a named monthly series from a per-month accessor.
func (r *Result) series(name string, f func(MonthMetrics) float64) stats.Series {
	s := stats.Series{Name: name}
	for _, m := range r.Months {
		s.Points = append(s.Points, stats.Point{Time: m.Date, Label: m.Label, Value: f(m)})
	}
	return s
}

// AdoptionSeries is the percentage of sites with an AI-restricting
// robots.txt per month.
func (r *Result) AdoptionSeries() stats.Series {
	return r.series("adoption %", func(m MonthMetrics) float64 {
		return stats.Percent(m.AdoptedSites, r.Spec.Sites)
	})
}

// DisallowedKBSeries is the monthly violation volume in KiB.
func (r *Result) DisallowedKBSeries() stats.Series {
	return r.series("disallowed KiB", func(m MonthMetrics) float64 {
		return float64(m.DisallowedBytes) / 1024
	})
}

// RespectRateSeries is the monthly respect rate in percent.
func (r *Result) RespectRateSeries() stats.Series {
	return r.series("respect %", func(m MonthMetrics) float64 {
		return 100 * m.RespectRate()
	})
}

// GapSeries is the monthly mean static-list coverage gap in percent.
func (r *Result) GapSeries() stats.Series {
	return r.series("static-list gap %", func(m MonthMetrics) float64 {
		return 100 * m.StaticGap()
	})
}
