package scenario

import (
	"context"
	"testing"
)

// planTestSpec mirrors the CI smoke world at reduced size.
func planTestSpec() Spec {
	return Spec{
		Name: "plan-test", Seed: 11, Sites: 10, Months: 6, Start: "2023-08",
		Adoption: AdoptionSpec{Source: SourceCorpusOther, Multiplier: 8, PerAgentShare: 0.5},
		Crawlers: []CrawlerSpec{
			{Token: "GPTBot", Behavior: "compliant"},
			{Token: "Bytespider", Behavior: "fetch-ignore", Cadence: 2},
		},
		Manager:          ManagerSpec{Uptake: 0.5},
		Blocking:         BlockingSpec{Share: 0.5, StartMonth: 2, RefreshMonthly: true},
		MaxPagesPerCrawl: 3,
	}
}

// TestSitePlansMatchEngine is the derivation's contract: SitePlans
// replays the engines' per-site RNG streams, so the plans must
// reproduce the engine's own monthly adoption/managed/blocker counts.
func TestSitePlansMatchEngine(t *testing.T) {
	spec := planTestSpec()
	plans, err := SitePlans(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != spec.Sites {
		t.Fatalf("got %d plans, want %d", len(plans), spec.Sites)
	}
	res, err := Run(context.Background(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}

	for m, mm := range res.Months {
		adopted, managed, blockers := 0, 0, 0
		for _, p := range plans {
			if p.AdoptMonth >= 0 && p.AdoptMonth <= m {
				adopted++
				if p.Style == StyleManaged {
					managed++
				}
			}
			if p.Blocker && m >= spec.Blocking.StartMonth {
				blockers++
			}
		}
		if mm.AdoptedSites != adopted {
			t.Errorf("month %d: engine adopted %d, plans say %d", m, mm.AdoptedSites, adopted)
		}
		if mm.ManagedSites != managed {
			t.Errorf("month %d: engine managed %d, plans say %d", m, mm.ManagedSites, managed)
		}
		if mm.ActiveBlockers != blockers {
			t.Errorf("month %d: engine blockers %d, plans say %d", m, mm.ActiveBlockers, blockers)
		}
	}
}

// TestSitePlansMeasurementSource checks the §5.1 replay: every site
// adopts at month 0, alternating wildcard and per-agent measurement
// policies.
func TestSitePlansMeasurementSource(t *testing.T) {
	spec := planTestSpec()
	spec.Adoption = AdoptionSpec{Source: SourceMeasurement}
	plans, err := SitePlans(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range plans {
		if p.AdoptMonth != 0 {
			t.Errorf("site %d: adopt month %d, want 0", i, p.AdoptMonth)
		}
		want := StyleWildcard
		if i%2 == 1 {
			want = StyleMeasurement
		}
		if p.Style != want {
			t.Errorf("site %d: style %q, want %q", i, p.Style, want)
		}
	}
}

// TestSitePlansNoneSource: no site ever adopts, but blocker draws still
// happen (same stream as the engine).
func TestSitePlansNoneSource(t *testing.T) {
	spec := planTestSpec()
	spec.Adoption = AdoptionSpec{Source: SourceNone}
	plans, err := SitePlans(spec)
	if err != nil {
		t.Fatal(err)
	}
	anyBlocker := false
	for i, p := range plans {
		if p.AdoptMonth != -1 || p.Style != "" {
			t.Errorf("site %d: plan %+v, want never-adopts", i, p)
		}
		anyBlocker = anyBlocker || p.Blocker
	}
	if !anyBlocker {
		t.Error("no site drew a blocker at share 0.5")
	}
}
