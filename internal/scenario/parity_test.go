package scenario

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/webserver"
)

// TestKeepAliveParityObservedScenario runs the observed-world builtin
// with the pooled keep-alive transport and with the compatibility knob
// forcing the old per-request dial, asserting the entire result —
// monthly metrics, verdicts, totals — is identical. Crawl waves are real
// HTTP, so this pins that transport pooling changed no measured byte.
func TestKeepAliveParityObservedScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario parity run in -short mode")
	}
	run := func(legacy bool) *Result {
		if legacy {
			netsim.SetLegacyPerRequestDial(true)
			defer netsim.SetLegacyPerRequestDial(false)
		}
		res, err := Run(context.Background(), Observed(11, 8, 12), 4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pooled := run(false)
	legacy := run(true)

	if !reflect.DeepEqual(pooled.Verdicts, legacy.Verdicts) {
		t.Errorf("verdicts diverged:\npooled: %v\nlegacy: %v", pooled.Verdicts, legacy.Verdicts)
	}
	if pooled.TotalVisits != legacy.TotalVisits ||
		pooled.TotalDisallowedBytes != legacy.TotalDisallowedBytes ||
		pooled.TotalBlockedRequests != legacy.TotalBlockedRequests {
		t.Errorf("totals diverged: pooled (%d, %d, %d) vs legacy (%d, %d, %d)",
			pooled.TotalVisits, pooled.TotalDisallowedBytes, pooled.TotalBlockedRequests,
			legacy.TotalVisits, legacy.TotalDisallowedBytes, legacy.TotalBlockedRequests)
	}
	if len(pooled.Months) != len(legacy.Months) {
		t.Fatalf("month counts diverged: %d vs %d", len(pooled.Months), len(legacy.Months))
	}
	for m := range pooled.Months {
		if !reflect.DeepEqual(pooled.Months[m], legacy.Months[m]) {
			t.Errorf("month %d diverged:\npooled: %+v\nlegacy: %+v",
				m, pooled.Months[m], legacy.Months[m])
		}
	}
}

// TestFastHTTPParityObservedScenario runs the observed-world builtin on
// the netsim-native fast HTTP path (the default) and with the
// compatibility knob forcing stdlib net/http on both client and servers,
// asserting the entire result — monthly metrics, verdicts, totals — is
// identical. This is the broadest parity check: crawls, blockers, 421s
// from the farm, and site churn all run over the hand-rolled framing.
func TestFastHTTPParityObservedScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario parity run in -short mode")
	}
	run := func(legacy bool) *Result {
		if legacy {
			netsim.SetLegacyNetHTTP(true)
			defer netsim.SetLegacyNetHTTP(false)
		}
		res, err := Run(context.Background(), Observed(11, 8, 12), 4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(false)
	legacy := run(true)

	if !reflect.DeepEqual(fast.Verdicts, legacy.Verdicts) {
		t.Errorf("verdicts diverged:\nfast:   %v\nlegacy: %v", fast.Verdicts, legacy.Verdicts)
	}
	if fast.TotalVisits != legacy.TotalVisits ||
		fast.TotalDisallowedBytes != legacy.TotalDisallowedBytes ||
		fast.TotalBlockedRequests != legacy.TotalBlockedRequests {
		t.Errorf("totals diverged: fast (%d, %d, %d) vs legacy (%d, %d, %d)",
			fast.TotalVisits, fast.TotalDisallowedBytes, fast.TotalBlockedRequests,
			legacy.TotalVisits, legacy.TotalDisallowedBytes, legacy.TotalBlockedRequests)
	}
	if len(fast.Months) != len(legacy.Months) {
		t.Fatalf("month counts diverged: %d vs %d", len(fast.Months), len(legacy.Months))
	}
	for m := range fast.Months {
		if !reflect.DeepEqual(fast.Months[m], legacy.Months[m]) {
			t.Errorf("month %d diverged:\nfast:   %+v\nlegacy: %+v",
				m, fast.Months[m], legacy.Months[m])
		}
	}
}

// TestFarmHostingParityObservedScenario runs the observed-world builtin
// with the per-shard virtual-host farms and with the compatibility knob
// forcing a dedicated server per site, asserting the entire result —
// monthly metrics, verdicts, totals — is identical. Site sims join and
// leave the shard farm over the run, so this also pins the
// StartSite/Remove lifecycle against the measurement contract.
func TestFarmHostingParityObservedScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario parity run in -short mode")
	}
	run := func(legacy bool) *Result {
		if legacy {
			webserver.SetLegacyPerSiteHosting(true)
			defer webserver.SetLegacyPerSiteHosting(false)
		}
		res, err := Run(context.Background(), Observed(11, 8, 12), 4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	farm := run(false)
	legacy := run(true)

	if !reflect.DeepEqual(farm.Verdicts, legacy.Verdicts) {
		t.Errorf("verdicts diverged:\nfarm:   %v\nlegacy: %v", farm.Verdicts, legacy.Verdicts)
	}
	if farm.TotalVisits != legacy.TotalVisits ||
		farm.TotalDisallowedBytes != legacy.TotalDisallowedBytes ||
		farm.TotalBlockedRequests != legacy.TotalBlockedRequests {
		t.Errorf("totals diverged: farm (%d, %d, %d) vs legacy (%d, %d, %d)",
			farm.TotalVisits, farm.TotalDisallowedBytes, farm.TotalBlockedRequests,
			legacy.TotalVisits, legacy.TotalDisallowedBytes, legacy.TotalBlockedRequests)
	}
	if len(farm.Months) != len(legacy.Months) {
		t.Fatalf("month counts diverged: %d vs %d", len(farm.Months), len(legacy.Months))
	}
	for m := range farm.Months {
		if !reflect.DeepEqual(farm.Months[m], legacy.Months[m]) {
			t.Errorf("month %d diverged:\nfarm:   %+v\nlegacy: %+v",
				m, farm.Months[m], legacy.Months[m])
		}
	}
}
