package scenario

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/netsim"
)

// TestKeepAliveParityObservedScenario runs the observed-world builtin
// with the pooled keep-alive transport and with the compatibility knob
// forcing the old per-request dial, asserting the entire result —
// monthly metrics, verdicts, totals — is identical. Crawl waves are real
// HTTP, so this pins that transport pooling changed no measured byte.
func TestKeepAliveParityObservedScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario parity run in -short mode")
	}
	run := func(legacy bool) *Result {
		if legacy {
			netsim.SetLegacyPerRequestDial(true)
			defer netsim.SetLegacyPerRequestDial(false)
		}
		res, err := Run(context.Background(), Observed(11, 8, 12), 4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pooled := run(false)
	legacy := run(true)

	if !reflect.DeepEqual(pooled.Verdicts, legacy.Verdicts) {
		t.Errorf("verdicts diverged:\npooled: %v\nlegacy: %v", pooled.Verdicts, legacy.Verdicts)
	}
	if pooled.TotalVisits != legacy.TotalVisits ||
		pooled.TotalDisallowedBytes != legacy.TotalDisallowedBytes ||
		pooled.TotalBlockedRequests != legacy.TotalBlockedRequests {
		t.Errorf("totals diverged: pooled (%d, %d, %d) vs legacy (%d, %d, %d)",
			pooled.TotalVisits, pooled.TotalDisallowedBytes, pooled.TotalBlockedRequests,
			legacy.TotalVisits, legacy.TotalDisallowedBytes, legacy.TotalBlockedRequests)
	}
	if len(pooled.Months) != len(legacy.Months) {
		t.Fatalf("month counts diverged: %d vs %d", len(pooled.Months), len(legacy.Months))
	}
	for m := range pooled.Months {
		if !reflect.DeepEqual(pooled.Months[m], legacy.Months[m]) {
			t.Errorf("month %d diverged:\npooled: %+v\nlegacy: %+v",
				m, pooled.Months[m], legacy.Months[m])
		}
	}
}
