package scenario

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/crawler"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/webserver"
)

// The compiled fast path. A long-tail site never runs live HTTP:
// instead, each distinct crawl-wave situation — (roster entry, visit
// phase, policy, blocker rule list, domain width) — is executed once,
// for real, on a scratch farm, and its log window is folded into a
// compact effect that replays with two array reads. The key covers
// every input the webserver and crawler consult during a wave, so the
// cache memoizes real execution rather than approximating it; the
// parity suite holds tiered output bit-identical to the full engine.

// waveKey identifies one crawl-wave situation.
type waveKey struct {
	roster  uint8  // roster entry index
	phase   uint8  // visit sequence mod 3 (IntermittentFetch's cycle)
	policy  uint16 // interned policy published at crawl time (0 = none)
	blocker uint16 // interned blocker rule list in force (0 = off)
	digits  uint8  // domain digit width (page bytes depend on it)
}

// waveEffect is the synthetic log record of one wave: the month-metric
// deltas and per-token evidence its real log window produced, feeding
// the same measure.ClassifyEvidence pipeline as live traffic.
type waveEffect struct {
	robotsFetches   int32
	blockedRequests int32
	disallowedBytes int64
	allowedBytes    int64
	token           int32 // tokens index of the evidence entry; -1 none
	ev              measure.Evidence
}

// waveCache shares compiled effects across workers. Concurrent misses
// on one key compile the same deterministic effect, so races are benign
// duplicate work; the first store wins.
type waveCache struct {
	mu sync.RWMutex
	m  map[waveKey]waveEffect
}

func (c *waveCache) get(key waveKey) (waveEffect, bool) {
	c.mu.RLock()
	eff, ok := c.m[key]
	c.mu.RUnlock()
	return eff, ok
}

func (c *waveCache) put(key waveKey, eff waveEffect) waveEffect {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.m[key]; ok {
		return prev
	}
	c.m[key] = eff
	return eff
}

// wavePhase is the visit-sequence residue a behaviour keys on: an
// IntermittentFetch crawler making its k-th visit (0-based) fetches
// robots.txt iff k%3 == 0. Every other behaviour is phase-free.
func wavePhase(b crawler.Behavior, k int) uint8 {
	if b == crawler.IntermittentFetch {
		return uint8(k % 3)
	}
	return 0
}

// waveCompiler executes cache misses for one worker: a private scratch
// network and farm, one throwaway site per domain width, reconfigured
// per compile. Compiles are rare — bounded by the key space, not the
// site count — so a fresh crawler per compile is fine.
type waveCompiler struct {
	world *tierWorld
	nw    *netsim.Network
	farm  *webserver.Farm
	sites map[uint8]*webserver.Site
}

func newWaveCompiler(world *tierWorld) (*waveCompiler, error) {
	nw := netsim.New()
	farm, err := webserver.NewFarm(nw, siteIP)
	if err != nil {
		return nil, err
	}
	return &waveCompiler{world: world, nw: nw, farm: farm, sites: make(map[uint8]*webserver.Site)}, nil
}

func (c *waveCompiler) close() {
	c.farm.Close()
}

// site returns the scratch site whose domain has the given digit width.
// "site-000…0.scratch" would serve different "/" bytes than a real
// domain, so the scratch domain uses the exact scenario format at index
// 0 padded to width — same length, same links, same page bytes.
func (c *waveCompiler) site(digits uint8) (*webserver.Site, error) {
	if s, ok := c.sites[digits]; ok {
		return s, nil
	}
	domain := fmt.Sprintf("site-%0*d.scenario.test", int(digits), 0)
	s, err := c.farm.StartSite(webserver.Config{
		Domain: domain,
		IP:     siteIP,
		Pages:  webserver.ContentPages(domain),
	})
	if err != nil {
		return nil, err
	}
	c.sites[digits] = s
	return s, nil
}

// compile runs one wave for real — scratch site configured to the key's
// policy and blocker, fresh crawler advanced to the key's phase, real
// HTTP over netsim — and folds its log window into an effect via the
// same absorbWindow the full engine's flush uses.
func (c *waveCompiler) compile(ctx context.Context, key waveKey) (waveEffect, error) {
	site, err := c.site(key.digits)
	if err != nil {
		return waveEffect{}, err
	}
	if key.policy == 0 {
		site.SetRobots(nil)
	} else {
		body := c.world.policies[key.policy].body
		site.SetRobots(&body)
	}
	if key.blocker == 0 {
		site.SetBlocker(nil)
	} else {
		site.SetBlocker(c.world.blockers[key.blocker].blocker)
	}

	rc := c.world.roster[key.roster]
	cr, err := crawler.New(c.nw, crawler.Profile{
		Token:    rc.spec.Token,
		SourceIP: rc.sourceIP,
		Behavior: rc.behavior,
		MaxPages: c.world.sp.MaxPagesPerCrawl,
	})
	if err != nil {
		return waveEffect{}, err
	}
	cr.AdvanceVisits(int(key.phase))

	mark := site.LogLen()
	if rc.spec.SinglePage {
		if _, _, err := cr.FetchOne(ctx, site.URL()+"/about.html"); err != nil {
			return waveEffect{}, err
		}
	} else if _, err := cr.Crawl(ctx, site.URL()); err != nil {
		return waveEffect{}, err
	}
	window := site.LogSince(mark)

	restricts, parsed := c.world.restrictsFunc(key.policy)
	var mm MonthMetrics
	windowEv := make(map[string]measure.Evidence)
	absorbWindow(window, parsed, restricts, &mm, windowEv)

	eff := waveEffect{
		robotsFetches:   int32(mm.RobotsFetches),
		blockedRequests: int32(mm.BlockedRequests),
		disallowedBytes: mm.DisallowedBytes,
		allowedBytes:    mm.AllowedBytes,
		token:           -1,
	}
	// One crawler, one User-Agent: a wave's window can carry evidence for
	// at most one token. Guarding keeps the effect deterministic.
	if len(windowEv) > 1 {
		return waveEffect{}, fmt.Errorf("scenario: wave compile produced %d evidence tokens", len(windowEv))
	}
	for tok, ev := range windowEv {
		id, ok := c.world.tokenIndex[tok]
		if !ok {
			return waveEffect{}, fmt.Errorf("scenario: wave compile saw unknown token %q", tok)
		}
		eff.token = int32(id)
		eff.ev = ev
	}
	mTierCompiledWaves.Inc()
	return eff, nil
}
