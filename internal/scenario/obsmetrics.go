package scenario

import "repro/internal/obs"

// Engine metrics. Month wall-clock is per-site: each site simulation
// observes the real time spent between its virtual month boundaries, so
// the histogram exposes where scenario runs actually burn time (slow
// sites dominate the upper buckets).
var (
	mEvents = obs.NewCounter("scenario_events_total",
		"Discrete events processed across all site simulations.")
	mCrawlWaves = obs.NewCounter("scenario_crawl_waves_total",
		"Completed crawl waves (one crawler visiting one site).")
	mMonthWallNS = obs.NewHistogram("scenario_month_wall_ns",
		"Real time one site simulation spent per virtual month, ns.")
	mRunWallNS = obs.NewHistogram("scenario_run_wall_ns",
		"Real time per full scenario Run call, ns.")
)
