package scenario

import "repro/internal/obs"

// Engine metrics. Month wall-clock is per-site: each site simulation
// observes the real time spent between its virtual month boundaries, so
// the histogram exposes where scenario runs actually burn time (slow
// sites dominate the upper buckets).
var (
	mEvents = obs.NewCounter("scenario_events_total",
		"Discrete events processed across all site simulations.")
	mCrawlWaves = obs.NewCounter("scenario_crawl_waves_total",
		"Completed crawl waves (one crawler visiting one site).")
	mMonthWallNS = obs.NewHistogram("scenario_month_wall_ns",
		"Real time one site simulation spent per virtual month, ns.")
	mRunWallNS = obs.NewHistogram("scenario_run_wall_ns",
		"Real time per full scenario Run call, ns.")
)

// Tiered-engine metrics: tier transitions, the hot/cold site-month
// split, and the wave cache's compile/replay economics.
var (
	mTierPromotions = obs.NewCounter("scenario_tier_promotions_total",
		"Long-tail sites promoted to full fidelity for a month.")
	mTierDemotions = obs.NewCounter("scenario_tier_demotions_total",
		"Sites demoted from full fidelity back to the long tail.")
	mTierHotSiteMonths = obs.NewCounter("scenario_tier_hot_site_months_total",
		"Site-months simulated at full fidelity in tiered runs.")
	mTierColdSiteMonths = obs.NewCounter("scenario_tier_cold_site_months_total",
		"Site-months advanced on the compiled fast path.")
	mTierCompiledWaves = obs.NewCounter("scenario_tier_compiled_waves_total",
		"Wave cache misses executed for real on a scratch farm.")
	mTierReplayedWaves = obs.NewCounter("scenario_tier_replayed_waves_total",
		"Long-tail crawl waves answered from the wave cache.")
)
