package scenario

import (
	"fmt"

	"repro/internal/stats"
)

// SiteDomain is the canonical domain of scenario site i, shared by both
// engines and the run store's per-site segments.
func SiteDomain(i int) string {
	return fmt.Sprintf("site-%05d.scenario.test", i)
}

// Site policy styles, as SitePlan.Style reports them.
const (
	// StyleWildcard is a blanket `User-agent: *` disallow.
	StyleWildcard = "wildcard"
	// StyleMeasurement is the §5.1 per-agent measurement list naming
	// every Table 1 agent.
	StyleMeasurement = "measurement"
	// StyleManaged is a managed-service list refreshed monthly.
	StyleManaged = "managed"
	// StyleFrozen is a hand-written per-agent list frozen at adoption.
	StyleFrozen = "frozen-list"
)

// SitePlan is one site's derivable policy timeline: when it adopts an
// AI-restricting robots.txt, in which style, and whether it sits behind
// the active-blocking provider. Everything here is a pure function of
// (spec, seed, site index) — the same four RNG draws runSite and the
// tiered planSite consume — so plans can be recomputed for any run
// without re-running the simulation, and two stored runs can be diffed
// host by host for policy and blocker flips.
type SitePlan struct {
	Site   int    `json:"site"`
	Domain string `json:"domain"`
	// AdoptMonth is the month the site first publishes an AI-restricting
	// robots.txt; -1 means it never adopts.
	AdoptMonth int `json:"adopt_month"`
	// Style is the adopted policy's shape (Style* constants); empty when
	// the site never adopts.
	Style string `json:"style,omitempty"`
	// Blocker reports whether the site is behind the active-blocking
	// provider (blocking turns on at the spec's rollout month).
	Blocker bool `json:"blocker,omitempty"`
}

// SitePlans derives every site's plan for a spec. The derivation
// replays the engines' exact per-site RNG streams (seeds forked
// sequentially in site order, four draws per site in fixed order), so
// the plans are what any Run or RunTiered of the same spec enacts.
func SitePlans(spec Spec) ([]SitePlan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sp := spec.withDefaults()
	curve := sp.monthlyCurve()
	root := stats.NewRand(sp.Seed).Fork("scenario")
	plans := make([]SitePlan, sp.Sites)
	for i := range plans {
		seed := root.ForkSeed(fmt.Sprintf("site-%d", i))
		plans[i] = planFor(sp, curve, i, seed)
	}
	return plans, nil
}

// planFor computes one site's plan from its private stream — the same
// draw order as runSite and the columnar planSite.
func planFor(sp Spec, curve []float64, i int, seed int64) SitePlan {
	rn := stats.NewRand(seed)
	adoptRoll := rn.Float64()
	perAgentRoll := rn.Float64()
	managedRoll := rn.Float64()
	blockedRoll := rn.Float64()

	p := SitePlan{Site: i, Domain: SiteDomain(i), AdoptMonth: -1}
	perAgent, managed := false, false
	switch sp.Adoption.Source {
	case SourceMeasurement:
		p.AdoptMonth = 0
		perAgent = i%2 == 1
	case SourceNone:
	default:
		for m, target := range curve {
			if adoptRoll < target {
				p.AdoptMonth = m
				break
			}
		}
		perAgent = perAgentRoll < sp.Adoption.PerAgentShare
		managed = p.AdoptMonth >= 0 && perAgent && managedRoll < sp.Manager.Uptake
	}
	if p.AdoptMonth >= 0 {
		switch {
		case !perAgent:
			p.Style = StyleWildcard
		case sp.Adoption.Source == SourceMeasurement:
			p.Style = StyleMeasurement
		case managed:
			p.Style = StyleManaged
		default:
			p.Style = StyleFrozen
		}
	}
	p.Blocker = blockedRoll < sp.Blocking.Share
	return p
}
