package scenario

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/agents"
	"repro/internal/blocking"
	"repro/internal/crawler"
	"repro/internal/manager"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/robots"
	"repro/internal/stats"
	"repro/internal/webserver"
)

// Run executes the scenario on a workers-bounded pool and returns its
// monthly metrics and log-derived verdicts. Every site simulates on its
// own in-memory network with its own crawler instances, so sites are
// independent units of work; per-site randomness comes from forks
// derived sequentially before the parallel pass, which makes the result
// bit-identical at any worker count.
func Run(ctx context.Context, spec Spec, workers int) (*Result, error) {
	return RunObserved(ctx, spec, workers, nil)
}

// RunObserved is Run with an Observer attached: the engine streams the
// merged months and the finished result to ob while finalizing. A nil ob
// is Run exactly.
func RunObserved(ctx context.Context, spec Spec, workers int, ob Observer) (*Result, error) {
	if obs.Enabled() {
		defer mRunWallNS.ObserveSince(time.Now())
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sp := spec.withDefaults()
	roster, err := resolveRoster(sp)
	if err != nil {
		return nil, err
	}
	start := sp.startDate()
	curve := sp.monthlyCurve()

	// Forks consume parent RNG state, so derive them in site order before
	// sharding; each site then draws only from its private stream. The
	// stream depends on the seed but not the spec name, so counterfactual
	// variants of one world are paired: the same sites adopt at the same
	// months, and only the knob under study differs (coupled random
	// numbers).
	root := stats.NewRand(sp.Seed).Fork("scenario")
	forks := make([]*stats.Rand, sp.Sites)
	for i := range forks {
		forks[i] = root.Fork(fmt.Sprintf("site-%d", i))
	}

	sims := make([]*siteResult, sp.Sites)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var firstErr error
	var errOnce sync.Once
	parErr := par.Do(runCtx, workers, sp.Sites, func(shardStart, shardEnd int) {
		// Each shard runs its sites on a private network with one
		// virtual-host farm: the shard's sites come and go as map inserts
		// on a single shared listener instead of each paying a server
		// start. Sites stay observably independent — own domain, own log,
		// own crawler instances, RNG forks derived before sharding — so
		// the result is still bit-identical at any worker count.
		nw := netsim.New()
		farm, err := webserver.NewFarm(nw, siteIP)
		if err != nil {
			errOnce.Do(func() { firstErr = err; cancel() })
			return
		}
		defer farm.Close()
		for i := shardStart; i < shardEnd; i++ {
			sr, err := runSite(runCtx, sp, roster, curve, i, forks[i], start, nw, farm)
			if err != nil {
				errOnce.Do(func() { firstErr = err; cancel() })
				return
			}
			sims[i] = sr
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if parErr != nil {
		return nil, parErr
	}

	// Merge shards in site order; every reduction is commutative
	// integer addition, so the totals are schedule-independent.
	res := newResult(sp, start)
	evidence := make(map[string]measure.Evidence)
	for _, sr := range sims {
		for m := range sr.months {
			res.Months[m].add(sr.months[m])
		}
		for tok, ev := range sr.evidence {
			evidence[tok] = evidence[tok].Merge(ev)
		}
	}
	res.finalize(evidence, ob)
	return res, nil
}

// resolvedCrawler is a roster entry with its behaviour and network
// identity resolved.
type resolvedCrawler struct {
	spec     CrawlerSpec
	behavior crawler.Behavior
	sourceIP string
}

// resolveRoster maps spec entries to concrete crawler identities.
// Registry agents dial from their documented simulated ranges; unknown
// (rogue) tokens get a stable synthetic pool.
func resolveRoster(sp Spec) ([]resolvedCrawler, error) {
	out := make([]resolvedCrawler, len(sp.Crawlers))
	for i, c := range sp.Crawlers {
		b, ok := behaviorNames[c.Behavior]
		if !ok {
			return nil, fmt.Errorf("scenario %s: unknown behavior %q", sp.Name, c.Behavior)
		}
		ip := c.SourceIP
		if ip == "" {
			if a, found := agents.ByToken(c.Token); found && a.IPPrefix != "" {
				ip = a.IPPrefix + ".10"
			} else {
				ip = fmt.Sprintf("66.0.%d.10", i%250)
			}
		}
		out[i] = resolvedCrawler{spec: c, behavior: b, sourceIP: ip}
	}
	return out, nil
}

// blockAll is the policy the managed service and frozen lists derive
// their agent lists from: every AI class, as the §6 blockers do.
var blockAll = manager.Manager{Policy: manager.BlockAllAI}

// siteResult is one site's contribution to the merged result.
type siteResult struct {
	months   []MonthMetrics
	evidence map[string]measure.Evidence
}

// siteSim is the mutable state of one site's event-driven simulation.
type siteSim struct {
	spec   Spec
	site   *webserver.Site
	queue  *eventQueue
	months []MonthMetrics

	// policy state
	adopted   bool
	perAgent  bool
	managed   bool
	frozen    int // size of the hand-written list at adoption
	policy    *robots.Robots
	blockerOn bool

	// log analysis state
	logMark  int
	evidence map[string]measure.Evidence
}

// siteIP is the shared advertised address of every scenario site — the
// farm listener of each shard's private network.
const siteIP = "203.0.113.80"

// runSite simulates one site's whole timeline on its shard's network.
func runSite(ctx context.Context, sp Spec, roster []resolvedCrawler, curve []float64,
	idx int, rn *stats.Rand, start time.Time, nw *netsim.Network, farm *webserver.Farm) (*siteResult, error) {
	domain := SiteDomain(idx)
	site, err := farm.StartSite(webserver.Config{
		Domain: domain,
		IP:     siteIP,
		Pages:  webserver.ContentPages(domain),
	})
	if err != nil {
		return nil, err
	}
	defer site.Close()

	// Per-site draws, in a fixed order so the stream is stable however
	// the spec's knobs are set.
	adoptRoll := rn.Float64()
	perAgentRoll := rn.Float64()
	managedRoll := rn.Float64()
	blockedRoll := rn.Float64()

	sim := &siteSim{
		spec:     sp,
		site:     site,
		queue:    &eventQueue{},
		months:   make([]MonthMetrics, sp.Months),
		evidence: make(map[string]measure.Evidence),
	}

	// Resolve the site's adoption schedule and policy style. Managed
	// services only matter for per-agent organic adopters: a blanket
	// wildcard disallow already covers every future agent, and the
	// measurement replay pins its policies verbatim.
	adoptMonth := -1
	switch sp.Adoption.Source {
	case SourceMeasurement:
		adoptMonth = 0
		sim.perAgent = idx%2 == 1
	case SourceNone:
	default:
		for m, target := range curve {
			if adoptRoll < target {
				adoptMonth = m
				break
			}
		}
		sim.perAgent = perAgentRoll < sp.Adoption.PerAgentShare
		sim.managed = adoptMonth >= 0 && sim.perAgent && managedRoll < sp.Manager.Uptake
	}
	hasBlocker := blockedRoll < sp.Blocking.Share

	// Build the site's crawler instances in roster order.
	crawlers := make([]*crawler.Crawler, len(roster))
	for i, rc := range roster {
		if rc.spec.SiteLimit > 0 && idx >= rc.spec.SiteLimit {
			continue
		}
		cr, err := crawler.New(nw, crawler.Profile{
			Token:    rc.spec.Token,
			SourceIP: rc.sourceIP,
			Behavior: rc.behavior,
			MaxPages: sp.MaxPagesPerCrawl,
		})
		if err != nil {
			return nil, err
		}
		crawlers[i] = cr
	}

	// Timeline: adoption, managed refreshes, blocking rollout, crawl
	// waves, and one metrics flush per month boundary.
	if adoptMonth >= 0 {
		sim.queue.schedule(adoptMonth, prioPolicy, func(now time.Time) error {
			sim.adopt(now)
			if sim.managed {
				sim.scheduleManagedRefresh(adoptMonth + 1)
			}
			return nil
		})
	}
	if hasBlocker {
		sim.queue.schedule(sp.Blocking.StartMonth, prioBlocking, func(now time.Time) error {
			sim.enableBlocking(now)
			if sp.Blocking.RefreshMonthly {
				sim.scheduleBlockerRefresh(sp.Blocking.StartMonth + 1)
			}
			return nil
		})
	}
	for i, rc := range roster {
		if crawlers[i] == nil {
			continue
		}
		sim.scheduleVisit(ctx, crawlers[i], rc.spec, rc.spec.FirstMonth, 0)
	}
	for m := 0; m < sp.Months; m++ {
		m := m
		sim.queue.schedule(m, prioFlush, func(now time.Time) error {
			sim.flush(m, now)
			return nil
		})
	}

	clk := &clock{start: start}
	if err := sim.queue.run(ctx, clk, sp.Months); err != nil {
		return nil, err
	}
	return &siteResult{months: sim.months, evidence: sim.evidence}, nil
}

// adopt installs the site's first AI-restricting robots.txt.
func (s *siteSim) adopt(now time.Time) {
	var body string
	switch {
	case !s.perAgent:
		body = "User-agent: *\nDisallow: /\n"
	case s.spec.Adoption.Source == SourceMeasurement:
		// The §5.1 per-agent measurement site names every Table 1 agent,
		// announced or not.
		b := robots.NewBuilder()
		for _, tok := range agents.Tokens() {
			b.Group(tok).DisallowAll()
		}
		s.frozen = len(agents.Tokens())
		body = b.String()
	case s.managed:
		body = blockAll.Render(now)
	default:
		frozen := blockAll.BlockedAgents(now)
		s.frozen = len(frozen)
		b := robots.NewBuilder()
		b.Comment("hand-maintained robots.txt — list written " + now.Format("2006-01-02"))
		if len(frozen) > 0 {
			b.Group(frozen...).DisallowAll()
		}
		b.Group("*").Disallow()
		body = b.String()
	}
	s.setRobots(body)
	s.adopted = true
}

// restricts reports whether the site's current robots.txt restricts the
// token at the root — whether its policy applies to that crawler at all.
// Every scenario policy is a full disallow for the agents it names, so
// the root probe is exact.
func (s *siteSim) restricts(tok string) bool {
	return s.adopted && s.policy != nil && !s.policy.Allowed(tok, "/")
}

// setRobots publishes a robots.txt body and caches its parsed policy for
// log analysis. Policies come from a small set of renderers (wildcard,
// managed list, frozen hand-written list), so the shared parse cache
// collapses the per-site re-parses to one per distinct body.
func (s *siteSim) setRobots(body string) {
	s.site.SetRobots(&body)
	s.policy = robots.ParseCached(body)
}

// scheduleManagedRefresh re-renders the managed rule list each month so
// newly announced agents are picked up, as the §2.2 services do.
func (s *siteSim) scheduleManagedRefresh(month int) {
	if month >= s.spec.Months {
		return
	}
	s.queue.schedule(month, prioPolicy, func(now time.Time) error {
		s.setRobots(blockAll.Render(now))
		s.scheduleManagedRefresh(month + 1)
		return nil
	})
}

// enableBlocking turns on the provider's UA-based blocking with a rule
// list frozen at the rollout date.
func (s *siteSim) enableBlocking(now time.Time) {
	s.site.SetBlocker(newUABlocker(now))
	s.blockerOn = true
}

// scheduleBlockerRefresh re-derives the provider rule list monthly.
func (s *siteSim) scheduleBlockerRefresh(month int) {
	if month >= s.spec.Months {
		return
	}
	s.queue.schedule(month, prioBlocking, func(now time.Time) error {
		s.site.SetBlocker(newUABlocker(now))
		s.scheduleBlockerRefresh(month + 1)
		return nil
	})
}

// scheduleVisit enqueues one crawl wave and, on completion, the next one
// on the crawler's cadence.
func (s *siteSim) scheduleVisit(ctx context.Context, cr *crawler.Crawler, cs CrawlerSpec, month, done int) {
	if month >= s.spec.Months || month > cs.LastMonth {
		return
	}
	if cs.MaxVisits > 0 && done >= cs.MaxVisits {
		return
	}
	s.queue.schedule(month, prioVisit, func(time.Time) error {
		if cs.SinglePage {
			if _, _, err := cr.FetchOne(ctx, s.site.URL()+"/about.html"); err != nil {
				return err
			}
		} else if _, err := cr.Crawl(ctx, s.site.URL()); err != nil {
			return err
		}
		mCrawlWaves.Inc()
		s.months[month].Visits++
		s.scheduleVisit(ctx, cr, cs, month+cs.Cadence, done+1)
		return nil
	})
}

// flush analyzes the month's log window — the ground truth — and records
// the month's metrics. The window is an incremental LogSince view, so a
// flush costs O(month's traffic) instead of re-merging the site's whole
// history every month.
func (s *siteSim) flush(month int, now time.Time) {
	mm := &s.months[month]
	mark := s.site.LogLen()
	window := s.site.LogSince(s.logMark)
	s.logMark = mark

	// Per-token evidence for this month's window. A token is classified
	// against sites whose policy restricts it — the same frame as the
	// paper's measurement sites, where every logged fetch happens under
	// an applicable disallow rule.
	windowEv := make(map[string]measure.Evidence)
	absorbWindow(window, s.policy, s.restricts, mm, windowEv)
	for tok, ev := range windowEv {
		mm.ClassCounts[measure.ClassifyEvidence(ev)]++
		s.evidence[tok] = s.evidence[tok].Merge(ev)
	}

	// Policy-state counters and the rule-list coverage gap.
	if s.adopted {
		mm.AdoptedSites = 1
		if s.managed {
			mm.ManagedSites = 1
		}
		announced := len(blockAll.BlockedAgents(now))
		covered := announced // wildcard and managed lists track everything
		if s.perAgent && !s.managed {
			covered = s.frozen
			// A measurement-style list names agents before announcement;
			// it can never have negative gap.
			if covered > announced {
				covered = announced
			}
		}
		if announced > 0 {
			mm.GapMissing = announced - covered
			mm.GapAnnounced = announced
		}
		mm.GapSites = 1
	}
	if s.blockerOn {
		mm.ActiveBlockers = 1
	}
}

// absorbWindow folds one month's log window into mm and the per-token
// evidence map, classifying each record against the site's policy at
// flush time. policy may be nil (no robots.txt yet); restricts reports
// whether that policy restricts tok at the root. Every branch is a
// commutative tally, so record order within a window never changes the
// outcome — the property that lets the tiered engine fold cached
// per-wave windows instead of a single merged month log.
func absorbWindow(window []webserver.Record, policy *robots.Robots, restricts func(string) bool,
	mm *MonthMetrics, windowEv map[string]measure.Evidence) {
	for _, rec := range window {
		tok := measure.ProductToken(rec.UserAgent)
		if tok == "" {
			continue
		}
		restricted := restricts(tok)
		switch {
		case rec.Status == 403:
			// Provider-denied requests (including robots.txt fetches the
			// blocker screened) were never served; they are not evidence
			// of anything but the blocking itself.
			mm.BlockedRequests++
		case rec.Path == "/robots.txt":
			mm.RobotsFetches++
			if restricted {
				ev := windowEv[tok]
				ev.RobotsOK++
				windowEv[tok] = ev
			}
		case strings.HasPrefix(rec.Path, "/robots.txt"):
			if restricted {
				ev := windowEv[tok]
				ev.RobotsBroken++
				windowEv[tok] = ev
			}
		case rec.Status != 200:
			// 404s and friends: neither served content nor a violation.
		case restricted && !policy.Allowed(tok, rec.Path):
			mm.DisallowedBytes += int64(rec.Bytes)
			ev := windowEv[tok]
			ev.Content++
			windowEv[tok] = ev
		default:
			mm.AllowedBytes += int64(rec.Bytes)
		}
	}
}

// newUABlocker builds the active-blocking provider's screen: a §6.2
// UA-substring blocker whose rule list holds the AI crawler tokens
// announced as of the given date. Only registry crawlers make the list —
// an undocumented rogue crawler sails through, which is exactly the
// counterfactual the rogue scenario measures. Each instance is
// immutable; refreshes swap in a new one.
func newUABlocker(asOf time.Time) webserver.Blocker {
	var patterns []string
	for _, a := range agents.RealCrawlers() {
		if agents.AnnouncedBy(a.UserAgent, asOf) {
			patterns = append(patterns, a.UserAgent)
		}
	}
	return &blocking.UABlocker{Patterns: patterns, Style: blocking.StyleForbidden}
}
