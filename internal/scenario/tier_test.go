package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// TestTieredParityWithFull is the tiered engine's core contract: for the
// same spec, RunTiered produces a Result reflect.DeepEqual to Run's — at
// every hot-cohort size (including zero, where the whole population runs
// on the compiled fast path) and every worker count.
func TestTieredParityWithFull(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{99, 7} {
		spec := testSpec()
		spec.Seed = seed
		want, err := Run(ctx, spec, 4)
		if err != nil {
			t.Fatalf("seed=%d: full run: %v", seed, err)
		}
		for _, hot := range []int{0, 3, spec.Sites} {
			for _, workers := range []int{1, 4, 8} {
				got, err := RunTiered(ctx, spec, TierOptions{HotSites: hot, Workers: workers})
				if err != nil {
					t.Fatalf("seed=%d hot=%d workers=%d: %v", seed, hot, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					gb, _ := json.MarshalIndent(got, "", " ")
					wb, _ := json.MarshalIndent(want, "", " ")
					t.Fatalf("seed=%d hot=%d workers=%d: tiered diverges from full:\n%s\nvs full:\n%s",
						seed, hot, workers, gb, wb)
				}
			}
		}
	}
}

// TestTieredWorkerCountIdentity pins the stronger serialization-level
// claim: the JSON bytes are identical at any worker count.
func TestTieredWorkerCountIdentity(t *testing.T) {
	ctx := context.Background()
	var outputs [][]byte
	for _, workers := range []int{1, 4, 8} {
		res, err := RunTiered(ctx, testSpec(), TierOptions{HotSites: 2, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, b)
	}
	for i := 1; i < len(outputs); i++ {
		if string(outputs[i]) != string(outputs[0]) {
			t.Fatalf("tiered results differ between worker counts:\n%s\nvs\n%s",
				outputs[0], outputs[i])
		}
	}
}

// TestTieredDemoteRepromote forces long-tail sites through the full tier
// lifecycle — cold, promoted for adoption, demoted, re-promoted for the
// blocking rollout, demoted again — and checks the months they produce
// are byte-identical to an always-hot run and to the full engine, across
// seeds and worker counts.
func TestTieredDemoteRepromote(t *testing.T) {
	ctx := context.Background()
	spec := testSpec()
	spec.Sites = 6
	spec.Months = 8
	// Everyone adopts at month 1 and half the sites enable blocking at
	// month 4, so every tail site is promoted (at least) twice with cold
	// months in between.
	spec.Adoption = AdoptionSpec{Curve: []float64{0, 1}}
	spec.Blocking = BlockingSpec{Share: 0.5, StartMonth: 4, RefreshMonthly: true}

	for _, seed := range []int64{99, 7} {
		spec.Seed = seed
		full, err := Run(ctx, spec, 4)
		if err != nil {
			t.Fatalf("seed=%d: full run: %v", seed, err)
		}
		wantJSON, err := json.Marshal(full)
		if err != nil {
			t.Fatal(err)
		}
		allHot, err := RunTiered(ctx, spec, TierOptions{HotSites: spec.Sites, Workers: 2})
		if err != nil {
			t.Fatalf("seed=%d: all-hot run: %v", seed, err)
		}
		for _, workers := range []int{1, 4, 8} {
			var ts TierStats
			got, err := RunTiered(ctx, spec, TierOptions{HotSites: 2, Workers: workers, Stats: &ts})
			if err != nil {
				t.Fatalf("seed=%d workers=%d: %v", seed, workers, err)
			}
			if ts.Promotions == 0 || ts.Demotions == 0 {
				t.Fatalf("seed=%d workers=%d: tier lifecycle never exercised: %+v", seed, workers, ts)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(wantJSON) {
				t.Fatalf("seed=%d workers=%d: re-promoted run diverges from full engine:\n%s\nvs\n%s",
					seed, workers, gotJSON, wantJSON)
			}
			if !reflect.DeepEqual(got, allHot) {
				t.Fatalf("seed=%d workers=%d: re-promoted run diverges from always-hot run", seed, workers)
			}
		}
	}
}

// TestTieredColumnarFootprint holds the long-tail representation to its
// budget: at fifty thousand sites the columnar state must stay at or
// under 100 bytes per site.
func TestTieredColumnarFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-site run")
	}
	ctx := context.Background()
	spec := Spec{
		Name:     "footprint",
		Seed:     3,
		Sites:    50000,
		Months:   2,
		Adoption: AdoptionSpec{Source: SourceNone},
		Crawlers: []CrawlerSpec{{Token: "GPTBot", Behavior: "compliant", Cadence: 1}},
	}
	var ts TierStats
	if _, err := RunTiered(ctx, spec, TierOptions{Workers: 2, Stats: &ts}); err != nil {
		t.Fatal(err)
	}
	if per := ts.BytesPerSite(spec.Sites); per > 100 {
		t.Fatalf("columnar state costs %.1f bytes/site (budget 100): %+v", per, ts)
	}
	if ts.ColdSiteMonths != spec.Sites*spec.Months {
		t.Fatalf("expected an all-cold run, got %+v", ts)
	}
}

// TestWaveIndexMatchesSchedule replays scheduleVisit's recursion for a
// grid of crawler schedules and checks waveIndex derives the identical
// (visit, due) sequence from (spec, month) alone.
func TestWaveIndexMatchesSchedule(t *testing.T) {
	const months = 30
	for _, cs := range []CrawlerSpec{
		{FirstMonth: 0, LastMonth: months - 1, Cadence: 1},
		{FirstMonth: 0, LastMonth: months - 1, Cadence: 2},
		{FirstMonth: 5, LastMonth: months - 1, Cadence: 3},
		{FirstMonth: 5, LastMonth: 11, Cadence: 1},
		{FirstMonth: 2, LastMonth: months - 1, Cadence: 4, MaxVisits: 3},
		{FirstMonth: 0, LastMonth: 0, Cadence: 1},
		{FirstMonth: 29, LastMonth: 29, Cadence: 7},
	} {
		// scheduleVisit's ground truth: visits at FirstMonth + k*Cadence
		// while within [FirstMonth, LastMonth] and under MaxVisits.
		want := make(map[int]int)
		for m, k := cs.FirstMonth, 0; m < months && m <= cs.LastMonth; m, k = m+cs.Cadence, k+1 {
			if cs.MaxVisits > 0 && k >= cs.MaxVisits {
				break
			}
			want[m] = k
		}
		for m := 0; m < months; m++ {
			k, due := waveIndex(cs, m)
			wantK, wantDue := want[m]
			if due != wantDue || (due && k != wantK) {
				t.Fatalf("%+v month %d: waveIndex = (%d,%v), schedule says (%d,%v)",
					cs, m, k, due, wantK, wantDue)
			}
		}
	}
}

// TestTieredRosterLimit documents the uint8 roster-key bound.
func TestTieredRosterLimit(t *testing.T) {
	spec := testSpec()
	spec.Crawlers = nil
	for i := 0; i < 256; i++ {
		spec.Crawlers = append(spec.Crawlers, CrawlerSpec{
			Token: fmt.Sprintf("Bot%d", i), Behavior: "compliant", Cadence: 1,
		})
	}
	if _, err := RunTiered(context.Background(), spec, TierOptions{}); err == nil {
		t.Fatal("256-entry roster accepted by tiered mode")
	}
}
