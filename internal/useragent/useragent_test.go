package useragent

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExtractToken(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"GPTBot/1.0 (+https://openai.com/gptbot)", "GPTBot"},
		{"Mozilla/5.0 (compatible; CCBot/2.0)", "Mozilla"},
		{"AI2Bot", "AI2Bot"},
		{"360Spider", "360Spider"},
		{"anthropic-ai", "anthropic-ai"},
		{"Meta-ExternalAgent", "Meta-ExternalAgent"},
		{"  ClaudeBot  ", "ClaudeBot"},
		{"", ""},
		{"/leading-slash", ""},
		{"omgili/0.5 +http://omgili.com", "omgili"},
	}
	for _, c := range cases {
		if got := ExtractToken(c.in); got != c.want {
			t.Errorf("ExtractToken(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestExtractTokenStrict(t *testing.T) {
	// The strict RFC alphabet has no digits: AI2Bot truncates.
	if got := ExtractTokenStrict("AI2Bot"); got != "AI" {
		t.Errorf("strict AI2Bot = %q, want AI", got)
	}
	if got := ExtractTokenStrict("GPTBot/1.0"); got != "GPTBot" {
		t.Errorf("strict GPTBot/1.0 = %q", got)
	}
	if got := ExtractTokenStrict("Claude-Web"); got != "Claude-Web" {
		t.Errorf("strict Claude-Web = %q", got)
	}
}

func TestEqualToken(t *testing.T) {
	if !EqualToken("gptbot", "GPTBot") {
		t.Error("token comparison must be case-insensitive")
	}
	if EqualToken("GPTBot", "GPTBot2") {
		t.Error("distinct tokens must not match")
	}
}

func TestTokenMatchesPrefix(t *testing.T) {
	cases := []struct {
		pattern, token string
		want           bool
	}{
		{"Googlebot", "Googlebot-News", true},
		{"Googlebot-News", "Googlebot", false},
		{"googlebot", "GOOGLEBOT", true},
		{"", "GPTBot", false},
		{"GPTBot", "GPTBot", true},
	}
	for _, c := range cases {
		if got := TokenMatchesPrefix(c.pattern, c.token); got != c.want {
			t.Errorf("TokenMatchesPrefix(%q, %q) = %v, want %v",
				c.pattern, c.token, got, c.want)
		}
	}
}

func TestContainsFold(t *testing.T) {
	ua := FullUA("ClaudeBot", "1.0")
	if !ContainsFold(ua, "claudebot/") {
		t.Errorf("ContainsFold(%q, claudebot/) = false", ua)
	}
	if ContainsFold("short", "much longer pattern") {
		t.Error("longer substring cannot be contained")
	}
	if !ContainsFold("anything", "") {
		t.Error("empty substring is always contained")
	}
}

func TestMatchesAny(t *testing.T) {
	patterns := []string{"", "CCBot/", "anthropic-ai"}
	ua := FullUA("CCBot", "2.0")
	got, ok := MatchesAny(ua, patterns)
	if !ok || got != "CCBot/" {
		t.Fatalf("MatchesAny = %q, %v", got, ok)
	}
	if _, ok := MatchesAny("Mozilla/5.0 plain browser", patterns); ok {
		t.Fatal("browser UA must not match bot patterns")
	}
}

func TestFullUA(t *testing.T) {
	ua := FullUA("GPTBot", "")
	if !strings.Contains(ua, "GPTBot/1.0") {
		t.Fatalf("default version missing: %q", ua)
	}
	if ExtractToken(strings.TrimPrefix(ua[strings.Index(ua, "GPTBot"):], "")) != "GPTBot" {
		t.Fatalf("token not recoverable from %q", ua)
	}
}

func TestIsWildcard(t *testing.T) {
	if !IsWildcard(" * ") || IsWildcard("**") || IsWildcard("GPTBot") {
		t.Fatal("IsWildcard misclassification")
	}
}

// Property: the extracted token is always a prefix of the trimmed input and
// extraction is idempotent.
func TestExtractTokenProperties(t *testing.T) {
	f := func(s string) bool {
		tok := ExtractToken(s)
		if !strings.HasPrefix(strings.TrimSpace(s), tok) {
			return false
		}
		return ExtractToken(tok) == tok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ContainsFold agrees with strings.Contains on lowered inputs.
func TestContainsFoldProperty(t *testing.T) {
	f := func(s, sub string) bool {
		want := strings.Contains(strings.ToLower(s), strings.ToLower(sub))
		return ContainsFold(s, sub) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: prefix match is reflexive for non-empty tokens.
func TestPrefixReflexive(t *testing.T) {
	f := func(s string) bool {
		tok := ExtractToken("x" + s) // guarantee non-empty
		return TokenMatchesPrefix(tok, tok)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
