// Package useragent implements user-agent string handling shared by the
// robots.txt matcher, the crawler fleet, and the blocking substrates.
//
// Two notions of "user agent" coexist in the Robots Exclusion Protocol
// world and the paper is careful to distinguish them:
//
//   - the product token, a short identifier such as "GPTBot" that a
//     crawler advertises and that robots.txt groups name; and
//   - the full User-Agent header, such as
//     "Mozilla/5.0 AppleWebKit/537.36; compatible; GPTBot/1.1", which
//     active-blocking rules (Cloudflare, .htaccess) match by substring.
//
// RFC 9309 §2.2.1 restricts product tokens to letters, hyphens and
// underscores. Real AI crawler tokens violate this (AI2Bot, 360Spider), so
// the practical extractor also accepts digits and dots; the strict RFC
// extractor is kept for the parser-compliance ablation.
package useragent

import "strings"

// ExtractToken returns the leading product token of a user-agent value
// using the practical alphabet (letters, digits, '-', '_', '.'). This
// mirrors what production robots.txt matchers do: "GPTBot/1.0 (+https://…)"
// yields "GPTBot", "Mozilla/5.0" yields "Mozilla".
func ExtractToken(ua string) string {
	return extract(ua, false)
}

// ExtractTokenStrict returns the leading product token using the exact
// RFC 9309 alphabet (letters, '-', '_'). Under this alphabet "AI2Bot"
// truncates to "AI": the divergence the practical extractor exists to fix.
func ExtractTokenStrict(ua string) string {
	return extract(ua, true)
}

func extract(ua string, strict bool) string {
	ua = strings.TrimSpace(ua)
	i := 0
	for i < len(ua) {
		c := ua[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
			i++
		case !strict && (c >= '0' && c <= '9' || c == '.'):
			i++
		default:
			return ua[:i]
		}
	}
	return ua
}

// EqualToken reports whether two product tokens are equal under the
// case-insensitive comparison RFC 9309 requires.
func EqualToken(a, b string) bool {
	return strings.EqualFold(a, b)
}

// TokenMatchesPrefix reports whether the robots.txt group name `pattern`
// matches the crawler token `token` under Google-style prefix semantics:
// "Googlebot" matches the crawler "Googlebot-News" but "Googlebot-News"
// does not match the crawler "Googlebot". The comparison is
// case-insensitive. An empty pattern matches nothing.
func TokenMatchesPrefix(pattern, token string) bool {
	if pattern == "" {
		return false
	}
	if len(pattern) > len(token) {
		return false
	}
	return strings.EqualFold(token[:len(pattern)], pattern)
}

// ContainsFold reports whether s contains substr case-insensitively.
// Active-blocking rule lists ("CCBot/", "anthropic-ai") are matched this
// way against the full User-Agent header.
func ContainsFold(s, substr string) bool {
	if substr == "" {
		return true
	}
	if len(substr) > len(s) {
		return false
	}
	ls, lsub := strings.ToLower(s), strings.ToLower(substr)
	return strings.Contains(ls, lsub)
}

// MatchesAny reports whether the full user-agent string ua matches any of
// the substring patterns, case-insensitively. It returns the first pattern
// that matched, or "" when none did.
func MatchesAny(ua string, patterns []string) (string, bool) {
	for _, p := range patterns {
		if p == "" {
			continue
		}
		if ContainsFold(ua, p) {
			return p, true
		}
	}
	return "", false
}

// FullUA builds a realistic full User-Agent header for a crawler product
// token, e.g. FullUA("GPTBot", "1.1") returns
// "Mozilla/5.0 AppleWebKit/537.36 (KHTML, like Gecko); compatible; GPTBot/1.1".
// Rule lists with trailing slashes (like Cloudflare's "CCBot/") rely on
// the token being followed by a version.
func FullUA(token, version string) string {
	if version == "" {
		version = "1.0"
	}
	return "Mozilla/5.0 AppleWebKit/537.36 (KHTML, like Gecko); compatible; " +
		token + "/" + version
}

// BrowserChromeUA is the desktop Chrome user agent the active-blocking
// prober uses for its control crawl (§6.1 of the paper).
const BrowserChromeUA = "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 " +
	"(KHTML, like Gecko) Chrome/124.0.0.0 Safari/537.36"

// IsWildcard reports whether a robots.txt user-agent value is the
// catch-all "*" group name.
func IsWildcard(pattern string) bool { return strings.TrimSpace(pattern) == "*" }
