// Artistsite: walk an artist through the §4.4 reality of hosting-provider
// control — compare what each of the paper's eight providers lets them do
// about AI crawlers, then show the effect of Squarespace's one-click AI
// toggle on actual crawler access.
package main

import (
	"fmt"

	"repro/internal/hosting"
	"repro/internal/robots"
)

func main() {
	fmt.Println("An artist shopping for a portfolio host, AI protection edition")
	fmt.Println()
	fmt.Printf("%-17s %-12s %-13s %s\n", "provider", "control", "AI by default", "notes")
	for _, p := range hosting.Providers {
		rb := robots.ParseString(p.RobotsTxt(false))
		defaultBlocked := "no"
		if lvl, ok := rb.ExplicitRestriction("GPTBot"); ok && lvl.Restricted() {
			defaultBlocked = "yes"
		}
		fmt.Printf("%-17s %-12s %-13s %s\n", p.Name, p.Control, defaultBlocked, p.ToSAITraining)
	}

	// The artist picks Squarespace and flips the AI toggle (Figure 5).
	sq, _ := hosting.ProviderByName("Squarespace")
	fmt.Println("\nSquarespace robots.txt with the AI toggle OFF:")
	fmt.Print(indent(sq.RobotsTxt(false)))
	fmt.Println("\nSquarespace robots.txt with the AI toggle ON:")
	fmt.Print(indent(sq.RobotsTxt(true)))

	// What does the toggle change for actual crawlers?
	fmt.Println("\ncrawler access to /gallery/new-piece.png:")
	fmt.Printf("%-15s %-12s %s\n", "crawler", "toggle off", "toggle on")
	off := robots.ParseString(sq.RobotsTxt(false))
	on := robots.ParseString(sq.RobotsTxt(true))
	for _, ua := range []string{"GPTBot", "anthropic-ai", "PerplexityBot", "Googlebot", "Bytespider"} {
		fmt.Printf("%-15s %-12s %s\n", ua,
			verdict(off.Allowed(ua, "/gallery/new-piece.png")),
			verdict(on.Allowed(ua, "/gallery/new-piece.png")))
	}
	fmt.Println("\nnote: Bytespider stays 'allowed' either way only on paper — §5 shows")
	fmt.Println("it ignores robots.txt, which is why §6's active blocking exists.")

	// And the population-level view: Table 2.
	fmt.Println("\nTable 2 regenerated over the 1,182-site artist population:")
	pop := hosting.GeneratePopulation(0, 1)
	for _, row := range hosting.Table2(pop) {
		fmt.Printf("  %-17s %5.1f%% of sites   %-12s %5.1f%% disallow AI\n",
			row.Provider, row.SharePct, row.Control, row.DisallowAIPct)
	}
}

func verdict(allowed bool) string {
	if allowed {
		return "allowed"
	}
	return "disallowed"
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if start < i {
				out += "    " + s[start:i] + "\n"
			} else {
				out += "\n"
			}
			start = i + 1
		}
	}
	return out
}
