// Dualpurpose: reproduce §6.2's dual-use-crawler dilemma. Googlebot
// feeds both the search index and AI training, so a site that wants
// search visibility but no AI training cannot solve this with active
// blocking — blocking the crawler removes the site from search. The only
// working lever is robots.txt with the special "virtual" control token
// (Google-Extended), which governs use without stopping the crawl.
package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/crawler"
	"repro/internal/manager"
	"repro/internal/netsim"
	"repro/internal/robots"
	"repro/internal/useragent"
	"repro/internal/webserver"
)

// mixedUseCompany models Google: one crawler, two downstream consumers.
// Pages reach the search index whenever the crawler may fetch them; they
// reach AI training only if robots.txt additionally leaves the company's
// virtual AI token unrestricted.
type mixedUseCompany struct {
	crawlerToken string
	virtualToken string
	sourceIP     string
}

func (m mixedUseCompany) visit(nw *netsim.Network, site *webserver.Site) (indexed, trained []string, err error) {
	cr, err := crawler.New(nw, crawler.Profile{
		Token: m.crawlerToken, SourceIP: m.sourceIP, Behavior: crawler.Compliant,
	})
	if err != nil {
		return nil, nil, err
	}
	v, err := cr.Crawl(context.Background(), site.URL())
	if err != nil {
		return nil, nil, err
	}
	indexed = v.Fetched
	if len(indexed) == 0 {
		return nil, nil, nil
	}

	// Before training, the company honors the virtual token: it reads
	// robots.txt and filters the collected pages.
	client := nw.HTTPClient(m.sourceIP)
	req, err := http.NewRequest(http.MethodGet, site.URL()+"/robots.txt", nil)
	if err != nil {
		return indexed, nil, err
	}
	req.Header.Set("User-Agent", useragent.FullUA(m.crawlerToken, "2.1"))
	resp, err := client.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return indexed, indexed, nil // no policy: train on everything
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	policy := robots.ParseString(string(body))
	for _, p := range indexed {
		if policy.Allowed(m.virtualToken, p) {
			trained = append(trained, p)
		}
	}
	return indexed, trained, nil
}

func runScenario(farm *webserver.Farm, nw *netsim.Network, company mixedUseCompany, name, ip, robotsTxt string, blocker webserver.Blocker) {
	cfg := webserver.Config{
		Domain: "artist-" + name + ".example", IP: ip,
		Pages:   webserver.ContentPages("artist-" + name + ".example"),
		Blocker: blocker,
	}
	if robotsTxt != "" {
		cfg.RobotsTxt = &robotsTxt
	}
	site, err := farm.StartSite(cfg)
	if err != nil {
		panic(err)
	}
	defer site.Close()
	indexed, trained, err := company.visit(nw, site)
	if err != nil {
		panic(err)
	}
	inSearch := "NOT in search results"
	if len(indexed) > 0 {
		inSearch = "visible in search"
	}
	usedForAI := "not used for AI training"
	if len(trained) > 0 {
		usedForAI = "USED for AI training"
	}
	fmt.Printf("  indexed pages: %-2d  trained pages: %-2d  → %s, %s\n",
		len(indexed), len(trained), inSearch, usedForAI)
}

func main() {
	nw := netsim.New()
	farm, err := webserver.NewFarm(nw, "203.0.116.250")
	if err != nil {
		panic(err)
	}
	defer farm.Close()
	google := mixedUseCompany{
		crawlerToken: "Googlebot",
		virtualToken: "Google-Extended",
		sourceIP:     "66.249.1.10",
	}

	fmt.Println("Scenario A — do nothing:")
	runScenario(farm, nw, google, "open", "203.0.116.1", "", nil)

	fmt.Println("\nScenario B — actively block Googlebot at the edge (all-or-nothing):")
	edgeBlock := webserver.BlockerFunc(func(r *http.Request) *webserver.BlockDecision {
		if useragent.ContainsFold(r.UserAgent(), "googlebot") {
			return &webserver.BlockDecision{Status: http.StatusForbidden,
				Body: "<html><body>blocked</body></html>"}
		}
		return nil
	})
	runScenario(farm, nw, google, "edge", "203.0.116.2", "", edgeBlock)

	fmt.Println("\nScenario C — robots.txt with the Google-Extended virtual token:")
	m := manager.Manager{Policy: manager.BlockAllAI, KeepSearchIndexing: true}
	asOf := time.Date(2024, time.October, 1, 0, 0, 0, 0, time.UTC)
	runScenario(farm, nw, google, "virtual", "203.0.116.3", m.Render(asOf), nil)

	fmt.Println("\n§6.2's conclusion: only the virtual token keeps the site in the")
	fmt.Println("search index while opting out of AI training; edge-blocking the")
	fmt.Println("dual-use crawler removes the site from search entirely.")
}
