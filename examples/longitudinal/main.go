// Longitudinal: regenerate the paper's §3 trend analysis on a reduced
// synthetic Common-Crawl corpus and print the Figure 2–4 series with
// terminal sparklines.
package main

import (
	"context"
	"fmt"

	"repro/internal/corpus"
	"repro/internal/longitudinal"
)

func main() {
	ctx := context.Background()
	fmt.Println("building a 1/10-scale Stable Top 100k corpus (15 snapshots, Oct 2022 – Oct 2024)…")
	c, err := corpus.New(ctx, corpus.Config{Seed: 42, Scale: 0.1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %d analysis sites (%d in the stable top 5k tier)\n\n",
		len(c.Sites()), c.Top5kCount())

	res, err := longitudinal.Analyze(ctx, c, 0)
	if err != nil {
		panic(err)
	}

	fmt.Println("Figure 2 — % of sites fully disallowing ≥1 AI crawler")
	fmt.Printf("  %-14s %s  (%.1f%% → %.1f%%)\n", res.Fig2Top5k.Name,
		res.Fig2Top5k.Sparkline(), res.Fig2Top5k.Points[0].Value, res.Fig2Top5k.Last().Value)
	fmt.Printf("  %-14s %s  (%.1f%% → %.1f%%)\n", res.Fig2Other.Name,
		res.Fig2Other.Sparkline(), res.Fig2Other.Points[0].Value, res.Fig2Other.Last().Value)

	fmt.Println("\nFigure 3 — % restricting each agent (end of window)")
	for _, ua := range []string{"GPTBot", "CCBot", "Google-Extended", "ChatGPT-User",
		"anthropic-ai", "ClaudeBot", "Claude-Web", "PerplexityBot", "Bytespider", "omgili"} {
		s := res.Fig3[ua]
		fmt.Printf("  %-16s %s  %5.2f%%\n", ua, s.Sparkline(), s.Last().Value)
	}

	fmt.Println("\nFigure 4 — explicit allows and removals")
	fmt.Printf("  %-22s %s  (ends at %.0f sites)\n", res.Fig4Allowed.Name,
		res.Fig4Allowed.Sparkline(), res.Fig4Allowed.Last().Value)
	fmt.Printf("  %-22s %s  (GPTBot removals total: %d)\n", res.Fig4Removed.Name,
		res.Fig4Removed.Sparkline(), res.GPTBotRemovals)

	fmt.Println("\nTable 4 — earliest GPTBot allowers:")
	for i, row := range res.Table4 {
		if i >= 8 {
			fmt.Printf("  … and %d more\n", len(res.Table4)-i)
			break
		}
		fmt.Printf("  %-28s first seen %s\n", row.Domain, row.FirstSeen)
	}

	fmt.Printf("\nauthoring quality: %.2f%% of sites have robots.txt mistakes; "+
		"%.2f%% blanket-disallow everyone\n",
		100*res.MistakeRate, 100*res.WildcardFullRate)
}
