// Quickstart: parse a robots.txt file, ask access questions, and
// categorize how it restricts AI crawlers — the core primitives every
// experiment in this repository builds on.
package main

import (
	"fmt"

	"repro/internal/agents"
	"repro/internal/robots"
)

func main() {
	// The example robots.txt from Figure 1 of the paper.
	body := `# An example robots.txt file
User-agent: Googlebot
Allow: /

User-agent: ChatGPT-User
User-agent: GPTBot
Disallow: /

User-agent: *
Disallow: /secret/
`
	rb := robots.ParseString(body)

	fmt.Println("Access checks:")
	for _, q := range []struct{ ua, path string }{
		{"Googlebot", "/portfolio/piece1.png"},
		{"GPTBot", "/portfolio/piece1.png"},
		{"ChatGPT-User", "/"},
		{"SomeOtherBot", "/secret/diary.html"},
		{"SomeOtherBot", "/public/page.html"},
	} {
		verdict := "allowed"
		if !rb.Allowed(q.ua, q.path) {
			verdict = "disallowed"
		}
		fmt.Printf("  %-14s %-26s %s\n", q.ua, q.path, verdict)
	}

	fmt.Println("\nRestriction categories (the paper's four levels):")
	for _, ua := range []string{"Googlebot", "GPTBot", "SomeOtherBot"} {
		fmt.Printf("  %-14s %s\n", ua, rb.Restriction(ua))
	}

	fmt.Println("\nExplicitly named crawler tokens:")
	for _, tok := range rb.AgentTokens() {
		if a, ok := agents.ByToken(tok); ok {
			fmt.Printf("  %-14s (%s, operated by %s)\n", tok, a.Category, a.Company)
		} else {
			fmt.Printf("  %-14s (not an AI crawler from Table 1)\n", tok)
		}
	}

	// Building robots.txt programmatically: what Squarespace's AI toggle
	// would emit for an artist's site.
	b := robots.NewBuilder()
	b.Comment("generated for an artist portfolio")
	b.Group(agents.SquarespaceBlockedAgents...).DisallowAll()
	b.Group("*").Disallow("/account/")
	b.Sitemap("https://artist.example/sitemap.xml")
	fmt.Println("\nGenerated robots.txt with the Squarespace AI-blocking list:")
	fmt.Print(b.String())
}
