// Crawleraudit: stand up an instrumented website on the in-memory
// network, point the AI crawler fleet at it, and audit — from the server
// logs alone — which crawlers respect robots.txt. This is the §5
// methodology as a library user would apply it to their own site.
package main

import (
	"context"
	"fmt"

	"repro/internal/agents"
	"repro/internal/crawler"
	"repro/internal/netsim"
	"repro/internal/webserver"
)

func main() {
	nw := netsim.New()

	// A virtual-host farm hosts the instrumented sites; adding one is a
	// map insert on the farm's shared listener.
	farm, err := webserver.NewFarm(nw, "203.0.113.1")
	if err != nil {
		panic(err)
	}
	defer farm.Close()

	// An artist site that disallows every Table 1 AI crawler by name.
	site, err := farm.StartSite(webserver.PerAgentDisallowSite(
		"portfolio.example", "203.0.113.100", agents.Tokens()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("hosting %s with per-agent disallow robots.txt\n\n", site.Domain())

	// A mixed fleet: compliant crawlers, Bytespider's fetch-and-ignore,
	// and a third-party assistant that never checks robots.txt.
	fleet := []crawler.Profile{
		{Token: "GPTBot", SourceIP: "24.0.1.10", Behavior: crawler.Compliant},
		{Token: "CCBot", SourceIP: "17.0.1.10", Behavior: crawler.Compliant},
		{Token: "ClaudeBot", SourceIP: "20.0.1.10", Behavior: crawler.Compliant},
		{Token: "Bytespider", SourceIP: "16.0.1.10", Behavior: crawler.FetchIgnore},
		{Token: "ShadyAssistant", SourceIP: "99.9.9.9", Behavior: crawler.NoFetch},
	}
	ctx := context.Background()
	for _, p := range fleet {
		c, err := crawler.New(nw, p)
		if err != nil {
			panic(err)
		}
		v, err := c.Crawl(ctx, site.URL())
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-15s robots fetched=%-5v pages fetched=%-2d skipped=%d\n",
			p.Token, v.RobotsRequested, len(v.Fetched), len(v.Skipped))
	}

	// Now audit from the server's perspective: who asked for robots.txt,
	// and who took content anyway?
	fmt.Println("\nserver-side audit:")
	type evidence struct{ robots, content int }
	byUA := map[string]*evidence{}
	for _, rec := range site.Log() {
		tok := rec.UserAgent
		if i := lastIndex(tok, "; "); i >= 0 {
			tok = tok[i+2:]
		}
		tok = productToken(tok)
		ev := byUA[tok]
		if ev == nil {
			ev = &evidence{}
			byUA[tok] = ev
		}
		if rec.Path == "/robots.txt" {
			ev.robots++
		} else {
			ev.content++
		}
	}
	for _, p := range fleet {
		ev := byUA[p.Token]
		if ev == nil {
			fmt.Printf("%-15s never visited\n", p.Token)
			continue
		}
		var verdict string
		switch {
		case ev.robots > 0 && ev.content == 0:
			verdict = "RESPECTS robots.txt"
		case ev.robots > 0:
			verdict = "fetches robots.txt but IGNORES it"
		default:
			verdict = "never fetches robots.txt"
		}
		fmt.Printf("%-15s robots=%d content=%d → %s\n", p.Token, ev.robots, ev.content, verdict)
	}
}

func lastIndex(s, sub string) int {
	for i := len(s) - len(sub); i >= 0; i-- {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func productToken(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.') {
			return s[:i]
		}
	}
	return s
}
