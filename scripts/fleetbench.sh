#!/usr/bin/env bash
# fleetbench: multi-process policyd fleet harness.
#
# Boots 2 cmd/policyd replicas and a cmd/policygw gateway on loopback,
# then drives them with concurrent cmd/loadgen processes on both wires
# (JSON batch API and the binary frame protocol) while the replicas
# hot-reload through corpus snapshots. Three modes:
#
#   scripts/fleetbench.sh bench         full benchmark -> BENCH_pr10.json
#                                       (merged with the policyd compile
#                                       pair via benchsnap -merge)
#   scripts/fleetbench.sh smoke         CI-sized gate: phase A diffs a
#                                       deterministic static-fleet run
#                                       against the checked-in golden
#                                       dir; phase B pushes load through
#                                       a live snapshot rollover and
#                                       checks QPS, zero decision
#                                       errors, and the fleet metric
#                                       families
#   scripts/fleetbench.sh golden DIR    regenerate the golden run dir
#                                       (same parameters as phase A)
#
# Every decision error aborts the run: loadgen exits non-zero on any
# failed decide call, and this script fails on any child failure.
set -euo pipefail

cd "$(dirname "$0")/.."

# Fixed loopback ports. The golden run's spec hash covers the target
# address, so smoke and golden must agree on these.
R1_JSON=18561 R1_FRAME=18562 R1_WATCH=18563
R2_JSON=18571 R2_FRAME=18572 R2_WATCH=18573
GW_JSON=19561 GW_FRAME=19562 GW_WATCH=19563 GW_METRICS=19564
GW="127.0.0.1:$GW_JSON"
REPLICAS="127.0.0.1:$R1_JSON:$R1_FRAME:$R1_WATCH,127.0.0.1:$R2_JSON:$R2_FRAME:$R2_WATCH"

MODE="${1:-bench}"
BIN="$(mktemp -d)"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

log() { echo "fleetbench: $*" >&2; }

log "building binaries"
go build -o "$BIN/" ./cmd/policyd ./cmd/policygw ./cmd/loadgen ./cmd/benchsnap ./cmd/rundiff

wait_port() { # host:port
  for _ in $(seq 1 120); do
    if curl -fsS --max-time 2 "http://$1/" -o /dev/null 2>/dev/null; then return 0; fi
    # Any HTTP answer (404 included) means the listener is up.
    code=$(curl -s --max-time 2 -o /dev/null -w '%{http_code}' "http://$1/" 2>/dev/null || true)
    [ "$code" != "000" ] && [ -n "$code" ] && return 0
    sleep 0.25
  done
  log "timed out waiting for $1"
  return 1
}

wait_fleet_settled() { # gateway /v1/stats must show both replicas on one version
  for _ in $(seq 1 120); do
    if curl -fsS --max-time 2 "http://$GW/v1/stats" 2>/dev/null | grep -q '"skew": *0'; then
      return 0
    fi
    sleep 0.25
  done
  log "fleet never settled on one version"
  curl -fsS "http://$GW/v1/stats" >&2 || true
  return 1
}

start_fleet() { # scale snap advance rate
  local scale=$1 snap=$2 advance=$3 rate=$4
  "$BIN/policyd" -addr 127.0.0.1:$R1_JSON -frame-addr 127.0.0.1:$R1_FRAME \
    -watch-addr 127.0.0.1:$R1_WATCH -scale "$scale" -snap "$snap" -advance "$advance" &
  PIDS+=($!)
  "$BIN/policyd" -addr 127.0.0.1:$R2_JSON -frame-addr 127.0.0.1:$R2_FRAME \
    -watch-addr 127.0.0.1:$R2_WATCH -scale "$scale" -snap "$snap" -advance "$advance" &
  PIDS+=($!)
  wait_port 127.0.0.1:$R1_JSON
  wait_port 127.0.0.1:$R2_JSON
  "$BIN/policygw" -addr 127.0.0.1:$GW_JSON -frame-addr 127.0.0.1:$GW_FRAME \
    -watch-addr 127.0.0.1:$GW_WATCH -metrics-addr 127.0.0.1:$GW_METRICS \
    -replicas "$REPLICAS" -rate "$rate" &
  PIDS+=($!)
  wait_port "$GW"
  wait_fleet_settled
}

stop_fleet() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  PIDS=()
}

# qps_of FILE NAME -> decisions_per_sec of one benchmark entry
qps_of() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
print(int(snap["benchmarks"][sys.argv[2]]["metrics"]["decisions_per_sec"]))
EOF
}

# check_complete FILE NAME: every issued decision got a verdict
check_complete() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))["benchmarks"][sys.argv[2]]
m = r["metrics"]
decided = int(m["allow"] + m["deny"] + m["block"])
if decided != r["iterations"]:
    sys.exit(f"{sys.argv[2]}: {decided} decided of {r['iterations']} issued")
print(f"{sys.argv[2]}: {r['iterations']} issued, all decided "
      f"(p99 {m.get('p99_ns', 0)/1e6:.2f}ms, rollovers {int(m.get('snapshot_rollovers', 0))})")
EOF
}

# Deterministic phase-A / golden parameters. Static pinned snapshot,
# accounting-only limiter: the decision mix and the per-tenant quota
# ledger are then pure functions of the seeded workload.
GOLDEN_SCALE=0.01 GOLDEN_SNAP=14 GOLDEN_N=20000 GOLDEN_BATCH=16 GOLDEN_CONC=2

run_golden_shaped() { # storedir
  "$BIN/loadgen" -target "http://$GW" -wire json -scale $GOLDEN_SCALE \
    -n $GOLDEN_N -batch $GOLDEN_BATCH -concurrency $GOLDEN_CONC \
    -name fleet-golden -store "$1"
}

case "$MODE" in
bench)
  OUT="${OUT:-BENCH_pr10.json}"
  SCALE="${SCALE:-0.05}" SNAP="${SNAP:-5}" ADVANCE="${ADVANCE:-4s}"
  N="${N:-1200000}" BATCH="${BATCH:-64}" CONC="${CONC:-8}"
  MIN_AGG_QPS="${MIN_AGG_QPS:-100000}"

  log "phase: fleet benchmark (2 replicas, advance $ADVANCE, n=$N x2 processes)"
  start_fleet "$SCALE" "$SNAP" "$ADVANCE" 0

  "$BIN/loadgen" -target "http://$GW" -wire json -scale "$SCALE" \
    -n "$N" -batch "$BATCH" -concurrency "$CONC" \
    -name fleet_loadgen_json -o "$WORK/json.json" &
  LG1=$!
  "$BIN/loadgen" -target "127.0.0.1:$GW_FRAME" -wire binary -scale "$SCALE" \
    -n "$N" -batch "$BATCH" -concurrency "$CONC" \
    -name fleet_loadgen_frame -o "$WORK/frame.json" &
  LG2=$!
  wait $LG1; wait $LG2

  check_complete "$WORK/json.json" fleet_loadgen_json
  check_complete "$WORK/frame.json" fleet_loadgen_frame
  JQPS=$(qps_of "$WORK/json.json" fleet_loadgen_json)
  FQPS=$(qps_of "$WORK/frame.json" fleet_loadgen_frame)
  AGG=$((JQPS + FQPS))
  log "aggregate: $AGG decisions/sec (json $JQPS + frame $FQPS)"
  if [ "$AGG" -lt "$MIN_AGG_QPS" ]; then
    log "FAIL: aggregate $AGG < $MIN_AGG_QPS decisions/sec"
    exit 1
  fi
  # Both processes must have crossed at least one live reload.
  python3 - "$WORK/json.json" "$WORK/frame.json" <<'EOF'
import json, sys
for f in sys.argv[1:]:
    b = next(iter(json.load(open(f))["benchmarks"].values()))
    if b["metrics"].get("snapshot_rollovers", 0) < 1:
        sys.exit(f"{f}: no snapshot rollover observed mid-run")
EOF
  stop_fleet

  log "measuring the compile pair"
  "$BIN/benchsnap" -bench 'policyd_compile' -o "$WORK/compile.json"
  "$BIN/benchsnap" -merge -o "$OUT" "$WORK/json.json" "$WORK/frame.json" "$WORK/compile.json"
  log "wrote $OUT"
  ;;

smoke)
  # Phase A: deterministic static fleet, diffed against the golden dir.
  log "phase A: static fleet vs golden run dir"
  start_fleet $GOLDEN_SCALE $GOLDEN_SNAP 0 0
  run_golden_shaped "$WORK/.runs"
  "$BIN/rundiff" -store "$WORK/.runs" diff cmd/rundiff/testdata/golden-fleet latest \
    -fail-on mix,quotas
  stop_fleet

  # Phase B: rollover fleet under concurrent two-wire load.
  SCALE="${SCALE:-0.02}" SNAP=5 ADVANCE="${ADVANCE:-1s}"
  N="${N:-500000}" BATCH=64 CONC=4 MIN_AGG_QPS="${MIN_AGG_QPS:-40000}"
  log "phase B: rollover fleet (advance $ADVANCE, n=$N x2 processes)"
  start_fleet "$SCALE" "$SNAP" "$ADVANCE" 0
  "$BIN/loadgen" -target "http://$GW" -wire json -scale "$SCALE" \
    -n "$N" -batch $BATCH -concurrency $CONC \
    -name fleet_smoke_json -o "$WORK/sj.json" &
  LG1=$!
  "$BIN/loadgen" -target "127.0.0.1:$GW_FRAME" -wire binary -scale "$SCALE" \
    -n "$N" -batch $BATCH -concurrency $CONC \
    -name fleet_smoke_frame -o "$WORK/sf.json" &
  LG2=$!
  wait $LG1; wait $LG2
  check_complete "$WORK/sj.json" fleet_smoke_json
  check_complete "$WORK/sf.json" fleet_smoke_frame
  AGG=$(( $(qps_of "$WORK/sj.json" fleet_smoke_json) + $(qps_of "$WORK/sf.json" fleet_smoke_frame) ))
  log "aggregate: $AGG decisions/sec"
  if [ "$AGG" -lt "$MIN_AGG_QPS" ]; then
    log "FAIL: aggregate $AGG < $MIN_AGG_QPS decisions/sec"
    exit 1
  fi
  # The run must have crossed a reload on at least one wire, and the
  # gateway must export the fleet metric families.
  python3 - "$WORK/sj.json" "$WORK/sf.json" <<'EOF'
import json, sys
total = sum(next(iter(json.load(open(f))["benchmarks"].values()))
            ["metrics"].get("snapshot_rollovers", 0) for f in sys.argv[1:])
if total < 1:
    sys.exit("no snapshot rollover observed on either wire")
print(f"observed {int(total)} rollovers across both wires")
EOF
  curl -fsS "http://127.0.0.1:$GW_METRICS/metrics" -o "$WORK/metrics.txt"
  for fam in fleet_gateway_requests_total fleet_route_total fleet_version_skew \
    fleet_ratelimit_drops_total fleet_swap_notifications_total; do
    grep -q "^# TYPE $fam " "$WORK/metrics.txt" || {
      log "missing gateway metric family $fam"
      cat "$WORK/metrics.txt" >&2
      exit 1
    }
  done
  stop_fleet
  log "smoke OK"
  ;;

golden)
  DIR="${2:?usage: fleetbench.sh golden DIR}"
  log "regenerating golden fleet run into $DIR"
  start_fleet $GOLDEN_SCALE $GOLDEN_SNAP 0 0
  run_golden_shaped "$WORK/.golden"
  stop_fleet
  run_id=$("$BIN/rundiff" -store "$WORK/.golden" list | awk 'NR==2 {print $1}')
  rm -rf "$DIR"
  mkdir -p "$(dirname "$DIR")"
  cp -r "$WORK/.golden/$run_id" "$DIR"
  log "golden run $run_id copied to $DIR"
  ;;

*)
  echo "usage: scripts/fleetbench.sh [bench|smoke|golden DIR]" >&2
  exit 2
  ;;
esac
