// Command crawlsim reproduces the paper's §5 experiment interactively:
// it stands up the two instrumented measurement sites, drives the AI
// crawler fleet at them, and prints the respect report derived from the
// server logs.
//
// Usage:
//
//	crawlsim            # passive study + Table 1 report
//	crawlsim -active    # also run the assistant-crawler active study
//	crawlsim -apps 200  # number of GPT apps to trigger
//	crawlsim -timeout 30s
//
// Interrupting the process (SIGINT) or exceeding -timeout cancels the
// studies cleanly between crawl waves.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"repro/internal/measure"
	"repro/internal/stats"
)

func main() {
	var (
		active  = flag.Bool("active", false, "also run the §5.2.2 active assistant study")
		apps    = flag.Int("apps", 120, "GPT apps to exercise in the active study")
		seed    = flag.Int64("seed", stats.DefaultSeed, "random seed")
		timeout = flag.Duration("timeout", 0, "abort the studies after this duration (0 = no limit)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	passive, err := measure.RunPassive(ctx, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crawlsim: passive study: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Passive measurement (six-month study, §5.2.1)")
	fmt.Printf("  crawlers observed: %d\n\n", len(passive.Visitors))
	fmt.Printf("  %-22s %-36s %s\n", "user agent", "observed behaviour", "IP verified")
	for _, tok := range passive.Visitors {
		verified := "-"
		if v, ok := passive.IPVerified[tok]; ok {
			if v {
				verified = "yes"
			} else {
				verified = "NO"
			}
		}
		fmt.Printf("  %-22s %-36s %s\n", tok, passive.Verdicts[tok], verified)
	}

	fmt.Println("\nTable 1 — respect in practice")
	for _, row := range measure.Table1Rows(passive) {
		fmt.Printf("  %-22s %-16s claim=%-4s measured=%s\n",
			row.Agent.UserAgent, row.Agent.Category, row.Agent.ClaimsRespect, row.Measured)
	}

	if !*active {
		return
	}
	res, err := measure.RunActive(ctx, *seed, *apps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crawlsim: active study: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nActive measurement (§5.2.2)")
	var names []string
	for name := range res.BuiltinVerdicts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  built-in %-28s %s\n", name, res.BuiltinVerdicts[name])
	}
	fmt.Printf("  GPT apps probed: %d → %d distinct third-party crawlers\n",
		res.AppsProbed, res.DistinctCrawlers)
	fmt.Println("  third-party behaviour mix:")
	for _, v := range []measure.Verdict{measure.Respected, measure.BuggyRobotsFetch,
		measure.IntermittentRespect, measure.NotFetched} {
		fmt.Printf("    %-36s %d\n", v, res.Summary[v])
	}
}
