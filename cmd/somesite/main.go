// Command somesite runs the paper-reproduction experiments: every table
// and figure from "Somesite I Used To Crawl" (IMC '25), regenerated from
// the simulation substrates in this repository.
//
// Experiments are scheduled by the core engine on a bounded worker pool;
// output is byte-identical at any parallelism because results stream to
// the sink in registration order and all shared substrates (corpus,
// longitudinal analysis, surveys) are built once in a shared cache.
//
// Usage:
//
//	somesite -list
//	somesite -only figure2,table1
//	somesite -quick -parallel 8
//	somesite -only figure7 -seed 7 -scale 0.5 -format json
//	somesite -timeout 10m -format markdown
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/runstore"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		only     = flag.String("only", "", "comma-separated experiment ids (empty = all)")
		quick    = flag.Bool("quick", false, "run at reduced scale (fast, CI-friendly)")
		seed     = flag.Int64("seed", 0, "override the random seed (0 = paper default)")
		scale    = flag.Float64("scale", 0, "override the corpus scale (0 = config default)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "experiments to run concurrently (1 = sequential)")
		format   = flag.String("format", "text", "output format: text, markdown, or json")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		workers  = flag.Int("workers", 0, "substrate/probe pool size (0 = config default)")
		storeDir = flag.String("store", "", "persist the run to this run-store directory (see cmd/rundiff)")
	)
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return 0
	}

	cfg := core.DefaultConfig()
	if *quick {
		cfg = core.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *scale != 0 {
		cfg.Scale = *scale
	}
	if *workers != 0 {
		cfg.Workers = *workers
	}

	sink, err := core.NewSink(*format, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "somesite: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var ids []string
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}

	var writer *runstore.ExperimentsWriter
	if *storeDir != "" {
		st, err := runstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "somesite: %v\n", err)
			return 2
		}
		cfgKey, err := json.Marshal(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "somesite: %v\n", err)
			return 2
		}
		writer, err = st.BeginExperiments(runstore.NewMeta(
			runstore.KindExperiments, "somesite", cfg.Seed,
			string(cfgKey)+"|only="+strings.Join(ids, ",")))
		if err != nil {
			fmt.Fprintf(os.Stderr, "somesite: %v\n", err)
			return 2
		}
		sink = teeSink{primary: sink, store: writer}
	}

	start := time.Now()
	results, err := core.RunAll(ctx, cfg, core.Options{
		Parallelism: *parallel,
		IDs:         ids,
		Sink:        sink,
	})
	if cerr := sink.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		if writer != nil {
			writer.Abort()
		}
		fmt.Fprintf(os.Stderr, "somesite: %v\n", err)
		if results == nil {
			return 2 // nothing ran (unknown id, bad flags)
		}
		return 1
	}
	if writer != nil {
		if err := writer.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "somesite: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "somesite: stored run %s in %s\n", writer.ID(), *storeDir)
	}
	if *format == "text" {
		fmt.Printf("(%d experiments completed in %v, parallelism %d)\n",
			len(results), time.Since(start).Round(time.Millisecond), *parallel)
	}
	return 0
}

// teeSink duplicates every result into the run-store writer alongside
// the user-facing sink. Close covers only the primary: the store writer
// commits (or aborts) explicitly so a failed run is never persisted as
// complete.
type teeSink struct {
	primary core.Sink
	store   *runstore.ExperimentsWriter
}

func (t teeSink) Emit(r *core.Result) error {
	if err := t.store.Emit(r); err != nil {
		return err
	}
	return t.primary.Emit(r)
}

func (t teeSink) Close() error { return t.primary.Close() }
