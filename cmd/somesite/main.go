// Command somesite runs the paper-reproduction experiments: every table
// and figure from "Somesite I Used To Crawl" (IMC '25), regenerated from
// the simulation substrates in this repository.
//
// Usage:
//
//	somesite -list
//	somesite -run figure2,table1
//	somesite -run all -quick
//	somesite -run figure7 -seed 7 -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments and exit")
		run   = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		quick = flag.Bool("quick", false, "run at reduced scale (fast, CI-friendly)")
		seed  = flag.Int64("seed", 0, "override the random seed (0 = paper default)")
		scale = flag.Float64("scale", 0, "override the corpus scale (0 = config default)")
		md    = flag.Bool("markdown", false, "render results as GitHub-flavored markdown")
	)
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := core.DefaultConfig()
	if *quick {
		cfg = core.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *scale != 0 {
		cfg.Scale = *scale
	}

	var selected []core.Experiment
	if *run == "all" {
		selected = core.Experiments()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := core.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "somesite: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	exit := 0
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "somesite: %s failed: %v\n", e.ID, err)
			exit = 1
			continue
		}
		render := core.Render
		if *md {
			render = core.RenderMarkdown
		}
		if err := render(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "somesite: rendering %s: %v\n", e.ID, err)
			exit = 1
			continue
		}
		if !*md {
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	os.Exit(exit)
}
