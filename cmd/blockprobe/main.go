// Command blockprobe runs the paper's §6 active-blocking measurements:
// the user-agent differential survey over a simulated top-site population
// (§6.2) and the Cloudflare Block-AI-Bots inference (§6.3 / Figure 7).
//
// Usage:
//
//	blockprobe                 # §6.2 survey at 10k sites
//	blockprobe -sites 1000     # smaller population
//	blockprobe -cloudflare     # §6.3 inference survey instead
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/blocking"
	"repro/internal/proxy"
	"repro/internal/stats"
)

func main() {
	var (
		sites      = flag.Int("sites", 10_000, "population size")
		cloudflare = flag.Bool("cloudflare", false, "run the §6.3 Cloudflare inference survey")
		workers    = flag.Int("workers", 64, "probe concurrency")
		seed       = flag.Int64("seed", stats.DefaultSeed, "random seed")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cloudflare {
		n := *sites
		if n == 10_000 {
			n = 2_018 // the paper's Cloudflare population
		}
		res, err := proxy.RunInferenceSurvey(ctx, n, *seed, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blockprobe: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Cloudflare Block AI Bots inference over %d proxied sites (Figure 7)\n", res.Total)
		fmt.Printf("  off:          %5d (%.2f%%)\n", res.Off, stats.Percent(res.Off, res.Total))
		fmt.Printf("  on/block:     %5d (%.2f%%)\n", res.OnBlock, stats.Percent(res.OnBlock, res.Total))
		fmt.Printf("  on/challenge: %5d (%.2f%%)\n", res.OnChallenge, stats.Percent(res.OnChallenge, res.Total))
		fmt.Printf("  inconclusive: %5d (%.2f%%)\n", res.Inconclusive, stats.Percent(res.Inconclusive, res.Total))
		fmt.Printf("  conclusive rate %.1f%%, adoption among conclusive %.1f%%\n",
			100*res.ConclusiveRate(), 100*res.OnRate())
		fmt.Printf("  robots.txt AI restrictions: %.0f%% of enabled sites vs %.0f%% of others\n",
			100*res.OnRobotsRate, 100*res.OffRobotsRate)
		return
	}

	res, err := blocking.RunSurvey(ctx, *sites, *seed, *workers, blocking.DefaultDetector)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blockprobe: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("Active-blocking survey over %d sites (§6.2)\n", res.Probed)
	fmt.Printf("  inherently block automation: %5d (%.1f%%)\n",
		res.InherentlyBlocked, stats.Percent(res.InherentlyBlocked, res.Probed))
	fmt.Printf("  actively block AI agents:    %5d (%.1f%%)\n",
		res.ActiveBlockers, stats.Percent(res.ActiveBlockers, res.Probed))
	fmt.Printf("  blockers also using robots.txt: %d (%.1f%% of blockers)\n",
		res.RobotsOverlap, stats.Percent(res.RobotsOverlap, res.ActiveBlockers))
}
