// Command rundiff inspects a longitudinal run store and diffs runs
// semantically: verdict-class migrations, month-metric deltas, per-host
// policy and blocker flips, decision-mix shifts, and experiment output
// changes, with advisory benchmark and obs-metric drift alongside.
//
// Usage:
//
//	rundiff -store .runs list
//	rundiff -store .runs show latest
//	rundiff -store .runs diff 20250807T1 latest
//	rundiff -store .runs diff latest path/to/golden-run -format markdown
//	rundiff diff runA-dir runB-dir -fail-on migrations
//	rundiff -store .runs gc -keep 20
//
// Run references are resolved against the store: "latest", an exact run
// id, or a unique id prefix. A reference that names a directory on disk
// (e.g. a checked-in golden run) is loaded directly, so store runs and
// standalone run directories diff interchangeably.
//
// diff exits 0 whether or not the runs differ; -fail-on turns selected
// semantic categories into a gate that exits 1 — CI uses
// "-fail-on migrations" to catch unexpected verdict-class changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/runstore"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `rundiff: usage:
  rundiff -store DIR list
  rundiff -store DIR show REF
  rundiff [-store DIR] diff REF_A REF_B [-format text|markdown|json] [-o FILE] [-fail-on CATS]
  rundiff -store DIR gc -keep N

A REF is "latest", a run id, a unique id prefix, or a run directory path.
-fail-on CATS: comma-separated from migrations,months,flips,mix,quotas,experiments,any.`)
	return 2
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("rundiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", "", "run-store directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		return usage(stderr)
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	openStore := func() (*runstore.Store, bool) {
		if *storeDir == "" {
			fmt.Fprintf(stderr, "rundiff: %s needs -store DIR\n", cmd)
			return nil, false
		}
		st, err := runstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(stderr, "rundiff: %v\n", err)
			return nil, false
		}
		return st, true
	}

	switch cmd {
	case "list":
		st, ok := openStore()
		if !ok {
			return 2
		}
		runs, err := st.Runs()
		if err != nil {
			fmt.Fprintf(stderr, "rundiff: %v\n", err)
			return 1
		}
		if len(runs) == 0 {
			fmt.Fprintf(stdout, "(store %s has no runs)\n", st.Dir())
			return 0
		}
		runstore.RenderList(stdout, runs)
		return 0

	case "show":
		if len(rest) != 1 {
			return usage(stderr)
		}
		r, err := loadRef(*storeDir, rest[0])
		if err != nil {
			fmt.Fprintf(stderr, "rundiff: %v\n", err)
			return 1
		}
		runstore.RenderRun(stdout, r)
		return 0

	case "diff":
		return runDiff(stdout, stderr, *storeDir, rest)

	case "gc":
		st, ok := openStore()
		if !ok {
			return 2
		}
		gcFlags := flag.NewFlagSet("rundiff gc", flag.ContinueOnError)
		gcFlags.SetOutput(stderr)
		keep := gcFlags.Int("keep", 20, "newest runs to keep")
		if err := gcFlags.Parse(rest); err != nil {
			return 2
		}
		removed, err := st.GC(*keep)
		if err != nil {
			fmt.Fprintf(stderr, "rundiff: %v\n", err)
			return 1
		}
		for _, id := range removed {
			fmt.Fprintf(stdout, "removed %s\n", id)
		}
		fmt.Fprintf(stdout, "(%d removed, %d kept)\n", len(removed), *keep)
		return 0

	default:
		fmt.Fprintf(stderr, "rundiff: unknown command %q\n", cmd)
		return usage(stderr)
	}
}

// runDiff handles the diff subcommand: resolve both refs, diff, render,
// and apply the -fail-on gate.
func runDiff(stdout, stderr io.Writer, storeDir string, args []string) int {
	fs := flag.NewFlagSet("rundiff diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", runstore.FormatText, "render format: text, markdown, or json")
	outPath := fs.String("o", "", "write the rendered diff to this file instead of stdout")
	failOn := fs.String("fail-on", "", "comma-separated semantic categories that exit 1 when non-empty: migrations,months,flips,mix,quotas,experiments,any")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 2 {
		return usage(stderr)
	}
	refA, refB := fs.Arg(0), fs.Arg(1)
	// Accept flags after the two refs too (flag.Parse stops at the first
	// positional argument): re-parse whatever followed them.
	if fs.NArg() > 2 {
		if err := fs.Parse(fs.Args()[2:]); err != nil {
			return 2
		}
		if fs.NArg() != 0 {
			return usage(stderr)
		}
	}

	a, err := loadRef(storeDir, refA)
	if err != nil {
		fmt.Fprintf(stderr, "rundiff: %v\n", err)
		return 1
	}
	b, err := loadRef(storeDir, refB)
	if err != nil {
		fmt.Fprintf(stderr, "rundiff: %v\n", err)
		return 1
	}
	d := runstore.DiffRuns(a, b)

	w := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "rundiff: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := d.Render(w, *format); err != nil {
		fmt.Fprintf(stderr, "rundiff: %v\n", err)
		return 1
	}

	tripped, err := gate(d, *failOn)
	if err != nil {
		fmt.Fprintf(stderr, "rundiff: %v\n", err)
		return 2
	}
	if len(tripped) > 0 {
		fmt.Fprintf(stderr, "rundiff: gate failed: %s\n", strings.Join(tripped, ", "))
		return 1
	}
	return 0
}

// gate evaluates -fail-on categories against the diff, returning the
// non-empty ones.
func gate(d *runstore.Diff, failOn string) ([]string, error) {
	var tripped []string
	for _, cat := range strings.Split(failOn, ",") {
		cat = strings.TrimSpace(cat)
		if cat == "" {
			continue
		}
		var hit bool
		var desc string
		switch cat {
		case "migrations":
			hit = len(d.VerdictMigrations) > 0
			desc = fmt.Sprintf("%d verdict migrations", len(d.VerdictMigrations))
		case "months":
			hit = len(d.MonthDeltas) > 0
			desc = fmt.Sprintf("%d month-metric deltas", len(d.MonthDeltas))
		case "flips":
			n := 0
			for _, c := range d.FlipTotals {
				n += c
			}
			hit = n > 0
			desc = fmt.Sprintf("%d policy/blocker flips", n)
		case "mix":
			hit = len(d.MixDeltas) > 0
			desc = fmt.Sprintf("%d decision-mix shifts", len(d.MixDeltas))
		case "quotas":
			hit = len(d.QuotaDeltas) > 0
			desc = fmt.Sprintf("%d tenant quota shifts", len(d.QuotaDeltas))
		case "experiments":
			hit = len(d.ExperimentChanges) > 0
			desc = fmt.Sprintf("%d experiment changes", len(d.ExperimentChanges))
		case "any":
			hit = !d.Empty()
			desc = "semantic differences present"
		default:
			return nil, fmt.Errorf("unknown -fail-on category %q", cat)
		}
		if hit {
			tripped = append(tripped, desc)
		}
	}
	return tripped, nil
}

// loadRef loads a run reference: a directory path loads directly, else
// the ref resolves against the store.
func loadRef(storeDir, ref string) (*runstore.Run, error) {
	if fi, err := os.Stat(ref); err == nil && fi.IsDir() {
		return runstore.LoadRunDir(ref)
	}
	if storeDir == "" {
		return nil, fmt.Errorf("ref %q is not a run directory and no -store is set", ref)
	}
	st, err := runstore.Open(storeDir)
	if err != nil {
		return nil, err
	}
	m, err := st.Resolve(ref)
	if err != nil {
		return nil, err
	}
	return st.LoadRun(m.ID)
}
