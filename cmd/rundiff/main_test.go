package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goldenDir = "testdata/golden"

// copyGolden clones the golden run dir into a temp dir so tests can
// tamper with segments.
func copyGolden(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(goldenDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestDiffGoldenAgainstItself: a run diffed against itself is
// semantically empty and passes every gate.
func TestDiffGoldenAgainstItself(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"diff", goldenDir, goldenDir, "-fail-on", "any"})
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "semantically identical") {
		t.Errorf("output missing identical marker:\n%s", stdout.String())
	}
}

// TestDiffGateTripsOnMigration: flipping one verdict in a copy must
// trip -fail-on migrations and name the token.
func TestDiffGateTripsOnMigration(t *testing.T) {
	tampered := copyGolden(t)
	vpath := filepath.Join(tampered, "verdicts.json")
	data, err := os.ReadFile(vpath)
	if err != nil {
		t.Fatal(err)
	}
	var verdicts map[string]string
	if err := json.Unmarshal(data, &verdicts); err != nil {
		t.Fatal(err)
	}
	if len(verdicts) == 0 {
		t.Fatal("golden verdict table is empty")
	}
	for tok := range verdicts {
		verdicts[tok] = "does not fetch robots.txt"
	}
	out, err := json.Marshal(verdicts)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(vpath, out, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"diff", goldenDir, tampered, "-fail-on", "migrations"})
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "verdict migrations") {
		t.Errorf("gate message missing: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "Verdict migrations") {
		t.Errorf("rendered diff missing migration section:\n%s", stdout.String())
	}
}

// TestDiffJSONFormat: -format json round-trips through encoding/json.
func TestDiffJSONFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"diff", goldenDir, goldenDir, "-format", "json"})
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if _, ok := doc["a"]; !ok {
		t.Error("JSON diff missing run metadata")
	}
}

// TestShowGolden: show renders a standalone run directory.
func TestShowGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"show", goldenDir})
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "kind=scenario") {
		t.Errorf("show output missing run kind:\n%s", stdout.String())
	}
}

// TestUsageErrors: missing refs and unknown commands exit 2.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"diff", "only-one-ref"},
		{"frobnicate"},
		{"list"}, // no -store
	} {
		var stdout, stderr bytes.Buffer
		if code := run(&stdout, &stderr, args); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
