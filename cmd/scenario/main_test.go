package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListBuiltins(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-list"}); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"baseline-replay", "rogue-crawler", "high-adoption"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list missing %s:\n%s", want, out.String())
		}
	}
}

func TestRunSmokeSpec(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-spec", "testdata/smoke.json", "-workers", "4"}); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"scenario ci-smoke", "crawler verdicts", "Scrapezilla"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBuiltinJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(&out, &errb, []string{"-builtin", "baseline-replay", "-format", "json"})
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var res struct {
		Verdicts map[string]int
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if len(res.Verdicts) != 9 {
		t.Fatalf("baseline observed %d crawlers, want 9", len(res.Verdicts))
	}
}

// TestTieredMatchesFullJSON is the CLI-level parity check CI repeats:
// the JSON a tiered run emits is byte-identical to the full engine's.
func TestTieredMatchesFullJSON(t *testing.T) {
	var full, tiered, errb bytes.Buffer
	if code := run(&full, &errb, []string{"-spec", "testdata/smoke.json", "-format", "json"}); code != 0 {
		t.Fatalf("full: exit %d: %s", code, errb.String())
	}
	args := []string{"-spec", "testdata/smoke.json", "-format", "json", "-tiered", "-hot", "3", "-workers", "4"}
	if code := run(&tiered, &errb, args); code != 0 {
		t.Fatalf("tiered: exit %d: %s", code, errb.String())
	}
	if full.String() != tiered.String() {
		t.Fatalf("tiered JSON diverges from full:\n%s\nvs\n%s", tiered.String(), full.String())
	}
}

func TestTieredTextReportsStats(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-spec", "testdata/smoke.json", "-tiered", "-hot", "2"}); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"tiered:", "site-months", "wave classes", "B/site columnar"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("tier footer missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadInvocations(t *testing.T) {
	cases := [][]string{
		{},
		{"-spec", "x.json", "-builtin", "baseline-replay"},
		{"-builtin", "no-such-world"},
		{"-spec", "testdata/does-not-exist.json"},
		{"-builtin", "baseline-replay", "-format", "yaml"},
		{"-builtin", "baseline-replay", "-sites", "-3"},
		// Shrinking the window below the rogue's arrival month must fail
		// loudly instead of silently simulating a rogue-free world.
		{"-builtin", "rogue-crawler", "-months", "10"},
		{"-dump", "no-such-world"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(&out, &errb, args); code == 0 {
			t.Errorf("args %v: expected failure", args)
		}
	}
}

func TestDumpBuiltin(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(&out, &errb, []string{"-dump", "high-adoption"}); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !json.Valid(out.Bytes()) || !strings.Contains(out.String(), "\"multiplier\": 4") {
		t.Fatalf("dump output wrong:\n%s", out.String())
	}
}
