// Command scenario runs one counterfactual ecosystem simulation from a
// JSON spec file or a named built-in world, standalone from the
// experiment engine.
//
// Usage:
//
//	scenario -list                        # built-in worlds
//	scenario -builtin rogue-crawler       # run a built-in
//	scenario -spec world.json             # run a spec file
//	scenario -spec world.json -sites 500 -months 36 -workers 8
//	scenario -builtin baseline-replay -format json | jq .Verdicts
//	scenario -dump high-adoption          # print a built-in as JSON to edit
//	scenario -builtin observed-world -sites 100000 -tiered -hot 64
//
// Identical specs produce bit-identical results at any -workers value;
// -tiered produces bit-identical results to the full engine at any
// -hot value, it only changes how fast the run gets there.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/scenario"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath = fs.String("spec", "", "path to a JSON scenario spec")
		builtin  = fs.String("builtin", "", "name of a built-in scenario (see -list)")
		list     = fs.Bool("list", false, "list built-in scenarios and exit")
		dump     = fs.String("dump", "", "print a built-in scenario's spec as JSON and exit")
		seed     = fs.Int64("seed", 0, "override the spec's random seed")
		sites    = fs.Int("sites", 0, "override the spec's site count")
		months   = fs.Int("months", 0, "override the spec's month count")
		workers  = fs.Int("workers", 0, "site-simulation pool size (0 = GOMAXPROCS)")
		tiered   = fs.Bool("tiered", false, "use the tiered engine (columnar long tail + wave cache)")
		hot      = fs.Int("hot", 32, "tiered mode: sites pinned to full-fidelity simulation")
		format   = fs.String("format", "text", "output format: text or json")
		timeout  = fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		metrics  = fs.String("metrics", "", "write obs metrics (Prometheus text) to this file at end of run (- = stderr)")
		storeDir = fs.String("store", "", "persist the run to this run-store directory (see cmd/rundiff)")
		cpuprof  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = fs.String("memprofile", "", "write a heap profile to this file at end of run")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *list:
		for _, s := range scenario.Builtins() {
			fmt.Fprintf(stdout, "%-20s %4d sites %3d months  %s\n", s.Name, s.Sites, s.Months, s.Description)
		}
		return 0
	case *dump != "":
		s, ok := scenario.BuiltinByName(*dump)
		if !ok {
			fmt.Fprintf(stderr, "scenario: unknown builtin %q (try -list)\n", *dump)
			return 2
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(s)
		return 0
	}

	var spec scenario.Spec
	switch {
	case *specPath != "" && *builtin != "":
		fmt.Fprintln(stderr, "scenario: -spec and -builtin are mutually exclusive")
		return 2
	case *specPath != "":
		s, err := scenario.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintf(stderr, "scenario: %v\n", err)
			return 2
		}
		spec = s
	case *builtin != "":
		s, ok := scenario.BuiltinByName(*builtin)
		if !ok {
			fmt.Fprintf(stderr, "scenario: unknown builtin %q (try -list)\n", *builtin)
			return 2
		}
		spec = s
	default:
		fmt.Fprintln(stderr, "scenario: need -spec FILE or -builtin NAME (or -list)")
		return 2
	}

	if *seed != 0 {
		spec.Seed = *seed
	}
	if *sites != 0 {
		spec.Sites = *sites
	}
	if *months != 0 {
		spec.Months = *months
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(stderr, "scenario: %v\n", err)
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "scenario: unknown format %q (want text or json)\n", *format)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	stopCPU, err := obs.StartCPUProfile(*cpuprof)
	if err != nil {
		fmt.Fprintf(stderr, "scenario: %v\n", err)
		return 1
	}

	var writer *runstore.ScenarioWriter
	var observer scenario.Observer // nil unless storing (a typed-nil writer must not reach the engine)
	if *storeDir != "" {
		st, err := runstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(stderr, "scenario: %v\n", err)
			return 1
		}
		writer, err = st.BeginScenario(
			runstore.NewMeta(runstore.KindScenario, spec.Name, spec.Seed, spec.CacheKey()))
		if err != nil {
			fmt.Fprintf(stderr, "scenario: %v\n", err)
			return 1
		}
		observer = writer
	}

	start := time.Now()
	var res *scenario.Result
	var tierStats scenario.TierStats
	if *tiered {
		res, err = scenario.RunTiered(ctx, spec, scenario.TierOptions{
			HotSites: *hot, Workers: *workers, Stats: &tierStats, Observer: observer,
		})
	} else {
		res, err = scenario.RunObserved(ctx, spec, *workers, observer)
	}
	stopCPU()
	if err != nil {
		if writer != nil {
			writer.Abort()
		}
		fmt.Fprintf(stderr, "scenario: %v\n", err)
		return 1
	}
	if writer != nil {
		if err := writer.Close(); err != nil {
			fmt.Fprintf(stderr, "scenario: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "scenario: stored run %s in %s\n", writer.ID(), *storeDir)
	}
	if err := obs.WriteHeapProfile(*memprof); err != nil {
		fmt.Fprintf(stderr, "scenario: %v\n", err)
		return 1
	}
	if err := obs.DumpMetrics(*metrics); err != nil {
		fmt.Fprintf(stderr, "scenario: %v\n", err)
		return 1
	}

	if *format == "json" {
		if err := json.NewEncoder(stdout).Encode(res); err != nil {
			fmt.Fprintf(stderr, "scenario: %v\n", err)
			return 1
		}
		return 0
	}
	writeText(stdout, res, time.Since(start))
	if *tiered {
		writeTierStats(stdout, spec, tierStats)
	}
	return 0
}

// writeTierStats appends the tiered engine's accounting to the text
// report: how the site-months split across tiers, the wave cache's
// compile/replay economics, and the long-tail footprint.
func writeTierStats(w io.Writer, spec scenario.Spec, ts scenario.TierStats) {
	fmt.Fprintf(w, "(tiered: %d hot + %d cold site-months, %d promotions, %d demotions; "+
		"%d wave classes compiled, %d replayed; %.1f B/site columnar)\n",
		ts.HotSiteMonths, ts.ColdSiteMonths, ts.Promotions, ts.Demotions,
		ts.WaveClasses, ts.ReplayedWaves, ts.BytesPerSite(spec.Sites))
}

// writeText renders the run as an aligned monthly report.
func writeText(w io.Writer, res *scenario.Result, elapsed time.Duration) {
	sp := res.Spec
	fmt.Fprintf(w, "=== scenario %s ===\n", sp.Name)
	if sp.Description != "" {
		fmt.Fprintf(w, "%s\n", sp.Description)
	}
	fmt.Fprintf(w, "%d sites, %d months from %s, seed %d\n\n", sp.Sites, sp.Months, sp.Start, sp.Seed)

	fmt.Fprintf(w, "  %-9s %8s %8s %8s %7s %9s %12s %8s %7s\n",
		"month", "adopted", "managed", "blocking", "visits", "respect", "violationKiB", "blocked", "gap")
	for _, m := range res.Months {
		fmt.Fprintf(w, "  %-9s %8d %8d %8d %7d %8.1f%% %12d %8d %6.1f%%\n",
			m.Label, m.AdoptedSites, m.ManagedSites, m.ActiveBlockers, m.Visits,
			100*m.RespectRate(), m.DisallowedBytes/1024, m.BlockedRequests, 100*m.StaticGap())
	}

	fmt.Fprintf(w, "\n  %-24s %s\n", "violation KiB", res.DisallowedKBSeries().Sparkline())
	fmt.Fprintf(w, "  %-24s %s\n", "adoption %", res.AdoptionSeries().Sparkline())
	fmt.Fprintf(w, "  %-24s %s\n", "static-list gap %", res.GapSeries().Sparkline())

	fmt.Fprintf(w, "\n  crawler verdicts (from simulated server logs):\n")
	for _, tok := range res.Tokens() {
		fmt.Fprintf(w, "    %-22s %s\n", tok, res.Verdicts[tok])
	}
	fmt.Fprintf(w, "\n(%d visits, %d KiB from disallowed paths, %d blocked requests; ran in %v)\n",
		res.TotalVisits, res.TotalDisallowedBytes/1024, res.TotalBlockedRequests,
		elapsed.Round(time.Millisecond))
}
