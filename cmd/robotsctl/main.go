// Command robotsctl inspects robots.txt files with the RFC 9309 engine
// from this repository: parse and lint a file, check whether a crawler
// may fetch a path, and categorize restriction levels the way the paper
// does.
//
// Usage:
//
//	robotsctl lint   < robots.txt
//	robotsctl check  -agent GPTBot -path /gallery/ < robots.txt
//	robotsctl level  -agent GPTBot < robots.txt
//	robotsctl agents < robots.txt
//	robotsctl diff   -old old.txt -new new.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/robots"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	agent := fs.String("agent", "*", "crawler user agent or product token")
	path := fs.String("path", "/", "request path to check")
	profile := fs.String("profile", "google", "parser profile: google, strict-rfc, legacy-buggy, classic-1994")
	oldFile := fs.String("old", "", "previous robots.txt (diff)")
	newFile := fs.String("new", "", "current robots.txt (diff)")
	fs.Parse(os.Args[2:])

	if cmd == "diff" {
		runDiff(*oldFile, *newFile)
		return
	}

	body, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal("reading stdin: %v", err)
	}
	p, ok := profileByName(*profile)
	if !ok {
		fatal("unknown profile %q", *profile)
	}
	rb := robots.ParseStringProfile(string(body), p)

	switch cmd {
	case "lint":
		rep := robots.Lint(string(body))
		fmt.Printf("groups: %d, rules: %d, mistakes: %d\n", rep.Groups, rep.Rules, rep.Mistakes)
		for _, w := range rep.Warnings {
			marker := " "
			if w.IsMistake() {
				marker = "!"
			}
			fmt.Printf("%s %s\n", marker, w)
		}
		if rep.Mistakes > 0 {
			os.Exit(1)
		}
	case "check":
		allowed := rb.Allowed(*agent, *path)
		verdict := "allowed"
		if !allowed {
			verdict = "disallowed"
		}
		fmt.Printf("%s is %s to fetch %s\n", *agent, verdict, *path)
		if !allowed {
			os.Exit(1)
		}
	case "level":
		lvl := rb.Restriction(*agent)
		explicitLvl, explicit := rb.ExplicitRestriction(*agent)
		fmt.Printf("%s: %s", *agent, lvl)
		if explicit {
			fmt.Printf(" (explicitly named: %s)", explicitLvl)
		} else {
			fmt.Printf(" (not explicitly named)")
		}
		fmt.Println()
	case "agents":
		for _, tok := range rb.AgentTokens() {
			lvl, _ := rb.ExplicitRestriction(tok)
			fmt.Printf("%-24s %s\n", tok, lvl)
		}
	default:
		usage()
		os.Exit(2)
	}
}

// runDiff prints agent-level changes between two robots.txt files — the
// §3.3 licensing-deal signature detector as a command.
func runDiff(oldPath, newPath string) {
	read := func(path string) *robots.Robots {
		if path == "" {
			fatal("diff requires -old and -new files")
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fatal("reading %s: %v", path, err)
		}
		return robots.ParseString(string(data))
	}
	changes := robots.Diff(read(oldPath), read(newPath))
	if len(changes) == 0 {
		fmt.Println("no agent-level changes")
		return
	}
	for _, c := range changes {
		fmt.Printf("%-24s %-24s %s -> %s\n", c.Agent, c.Kind, c.From, c.To)
	}
	os.Exit(1) // non-zero signals "changes found", like diff(1)
}

func profileByName(name string) (robots.Profile, bool) {
	for _, p := range []robots.Profile{
		robots.ProfileGoogle, robots.ProfileStrictRFC,
		robots.ProfileLegacyBuggy, robots.ProfileClassic1994,
	} {
		if p.Name == name {
			return p, true
		}
	}
	return robots.Profile{}, false
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: robotsctl <command> [flags] < robots.txt
commands:
  lint    report parse warnings and authoring mistakes
  check   -agent UA -path P   may the crawler fetch the path?
  level   -agent UA           restriction category for the crawler
  agents  list explicitly named crawler tokens
  diff    -old F -new F       agent-level changes between versions`)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "robotsctl: "+format+"\n", args...)
	os.Exit(1)
}
