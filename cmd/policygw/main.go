// Command policygw fronts a policyd fleet over real TCP: a
// consistent-hash gateway routing /v1/decide, /v1/batch, and the binary
// frame protocol across N replicas, with per-tenant token-bucket rate
// limiting and snapshot-version-coordinated hot reloads.
//
// Replicas are named host:port endpoints of their JSON listeners; by
// convention the frame listener is port+1 and the version-watch
// listener port+2 (how scripts/fleetbench.sh and the CI gate lay the
// fleet out). Endpoints that deviate can spell all three ports
// explicitly as host:json:frame:watch.
//
//	go run ./cmd/policyd -addr :8473 -frame-addr :8474 -watch-addr :8475 &
//	go run ./cmd/policyd -addr :8483 -frame-addr :8484 -watch-addr :8485 &
//	go run ./cmd/policygw -addr :9473 -frame-addr :9474 -watch-addr :9475 \
//	    -replicas localhost:8473,localhost:8483 -rate 50000
//
// The gateway keeps each host's queries on one replica (cache
// locality), never splits one batch across snapshot versions during a
// rollover, answers over-quota tenants with 429 + Retry-After (HTTP)
// or an in-band rate-limit frame (binary), and republishes the
// fleet-wide version on its own -watch-addr once every replica has
// swapped. /v1/quotas exposes the per-tenant ledger; the same ledger
// is printed at exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":9473", "TCP listen address for the JSON API")
	frameAddr := flag.String("frame-addr", "", "TCP listen address for the binary frame protocol (empty = off)")
	watchAddr := flag.String("watch-addr", "", "TCP listen address announcing the fleet-wide snapshot version (empty = off)")
	metricsAddr := flag.String("metrics-addr", "", "side TCP listen address for /metrics (empty = off)")
	replicas := flag.String("replicas", "", "comma-separated replica endpoints: host:port (frame = port+1, watch = port+2) or host:json:frame:watch")
	rate := flag.Float64("rate", 0, "per-tenant admitted decisions/sec (0 = accounting only, no limiting)")
	burst := flag.Float64("burst", 0, "per-tenant token-bucket burst (0 = derived from rate)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default)")
	flag.Parse()

	if err := run(*addr, *frameAddr, *watchAddr, *metricsAddr, *replicas, *rate, *burst, *vnodes); err != nil {
		fmt.Fprintf(os.Stderr, "policygw: %v\n", err)
		os.Exit(1)
	}
}

// parseReplicas expands the -replicas flag into named replica configs.
// host:port means (json=port, frame=port+1, watch=port+2);
// host:json:frame:watch spells every listener.
func parseReplicas(spec string) ([]fleet.ReplicaConfig, error) {
	var rcs []fleet.ReplicaConfig
	for i, ep := range strings.Split(spec, ",") {
		ep = strings.TrimSpace(ep)
		if ep == "" {
			continue
		}
		parts := strings.Split(ep, ":")
		var host string
		var jsonPort, framePort, watchPort int
		switch len(parts) {
		case 2:
			host = parts[0]
			if _, err := fmt.Sscanf(parts[1], "%d", &jsonPort); err != nil {
				return nil, fmt.Errorf("replica %q: bad port %q", ep, parts[1])
			}
			framePort, watchPort = jsonPort+1, jsonPort+2
		case 4:
			host = parts[0]
			for j, dst := range []*int{&jsonPort, &framePort, &watchPort} {
				if _, err := fmt.Sscanf(parts[1+j], "%d", dst); err != nil {
					return nil, fmt.Errorf("replica %q: bad port %q", ep, parts[1+j])
				}
			}
		default:
			return nil, fmt.Errorf("replica %q: want host:port or host:json:frame:watch", ep)
		}
		rcs = append(rcs, fleet.ReplicaConfig{
			Name:      fmt.Sprintf("policyd-%d@%s:%d", i, host, jsonPort),
			BaseURL:   fmt.Sprintf("http://%s:%d", host, jsonPort),
			FrameAddr: fmt.Sprintf("%s:%d", host, framePort),
			WatchAddr: fmt.Sprintf("%s:%d", host, watchPort),
		})
	}
	if len(rcs) == 0 {
		return nil, errors.New("-replicas is required (comma-separated host:port list)")
	}
	return rcs, nil
}

func run(addr, frameAddr, watchAddr, metricsAddr, replicas string, rate, burst float64, vnodes int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rcs, err := parseReplicas(replicas)
	if err != nil {
		return err
	}
	var dialer net.Dialer
	gw, err := fleet.NewGateway(fleet.Config{
		Replicas:   rcs,
		VNodes:     vnodes,
		Rate:       rate,
		Burst:      burst,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			return dialer.DialContext(ctx, "tcp", addr)
		},
	})
	if err != nil {
		return err
	}
	defer gw.Close()
	gw.Start(ctx)
	for _, rc := range rcs {
		fmt.Fprintf(os.Stderr, "policygw: replica %s (frames %s, watch %s)\n", rc.BaseURL, rc.FrameAddr, rc.WatchAddr)
	}

	srv := &http.Server{Addr: addr, Handler: gw.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "policygw: routing %d replicas on %s\n", len(rcs), addr)

	var frameLn net.Listener
	if frameAddr != "" {
		frameLn, err = net.Listen("tcp", frameAddr)
		if err != nil {
			return fmt.Errorf("frame listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "policygw: frame protocol on %s\n", frameLn.Addr())
		go func() {
			if err := gw.ServeFrames(frameLn); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "policygw: frame serve: %v\n", err)
			}
		}()
	}

	var watchLn net.Listener
	if watchAddr != "" {
		watchLn, err = net.Listen("tcp", watchAddr)
		if err != nil {
			return fmt.Errorf("watch listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "policygw: fleet version watch on %s\n", watchLn.Addr())
		go func() {
			if err := gw.ServeWatch(watchLn); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "policygw: watch serve: %v\n", err)
			}
		}()
	}

	var metricsSrv *http.Server
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler())
		metricsSrv = &http.Server{Addr: metricsAddr, Handler: mux}
		fmt.Fprintf(os.Stderr, "policygw: metrics on %s\n", metricsAddr)
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "policygw: metrics serve: %v\n", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if frameLn != nil {
		frameLn.Close()
	}
	if watchLn != nil {
		watchLn.Close()
	}
	if metricsSrv != nil {
		metricsSrv.Shutdown(shutCtx)
	}
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}

	st := gw.Stats()
	fmt.Fprintf(os.Stderr, "policygw: routed %d batches at fleet version %s; bye\n", st.Batches, st.Version)
	// The per-tenant quota ledger, one JSON document, for harness capture.
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	enc.Encode(gw.Limiter().Accounting())
	return nil
}
