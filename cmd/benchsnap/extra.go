package main

// Benchmarks that exercise APIs introduced together with this tool (the
// legacy-transport compatibility knob and the shared robots parse
// cache). They live apart from main.go so the common subset there can be
// compiled against older revisions when reconstructing a baseline.

import (
	"io"
	"testing"

	"repro/internal/netsim"
	"repro/internal/robots"
	"repro/internal/webserver"
)

func init() {
	register("netsim_http_legacy_dial", func(b *testing.B) {
		netsim.SetLegacyPerRequestDial(true)
		defer netsim.SetLegacyPerRequestDial(false)
		nw := netsim.New()
		site, err := webserver.Start(nw, webserver.WildcardDisallowSite("snap-legacy.test", "203.0.113.212"))
		if err != nil {
			b.Fatal(err)
		}
		defer site.Close()
		client := nw.HTTPClient("198.51.100.211")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Get(site.URL() + "/robots.txt")
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})

	register("robots_parse_cached", func(b *testing.B) {
		body := snapRobotsBody()
		cache := robots.NewCache(0)
		b.SetBytes(int64(len(body)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rb := cache.Parse(body); len(rb.Groups) == 0 {
				b.Fatal("no groups")
			}
		}
	})
}
