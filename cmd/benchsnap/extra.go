package main

// Benchmarks that exercise APIs introduced together with this tool (the
// legacy-transport compatibility knob and the shared robots parse
// cache). They live apart from main.go so the common subset there can be
// compiled against older revisions when reconstructing a baseline.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/corpus"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/policyd"
	"repro/internal/robots"
	"repro/internal/webserver"
)

// snapBatchSize is the query count per batched serving call in the wire
// comparison benchmarks.
const snapBatchSize = 256

// benchNetsimHTTP measures one keep-alive GET round trip through a farm
// site, on the fast path or with the stdlib-net/http knob on.
func benchNetsimHTTP(b *testing.B, legacy bool) {
	netsim.SetLegacyNetHTTP(legacy)
	defer netsim.SetLegacyNetHTTP(false)
	nw := netsim.New()
	farm, err := webserver.NewFarm(nw, "203.0.113.241")
	if err != nil {
		b.Fatal(err)
	}
	defer farm.Close()
	site, err := farm.StartSite(webserver.WildcardDisallowSite("snap-fast.test", "203.0.113.217"))
	if err != nil {
		b.Fatal(err)
	}
	client := nw.HTTPClient("198.51.100.217")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(site.URL() + "/robots.txt")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// benchSiteStartup measures one site start/stop cycle under either
// hosting mode.
func benchSiteStartup(b *testing.B, legacy bool) {
	webserver.SetLegacyPerSiteHosting(legacy)
	defer webserver.SetLegacyPerSiteHosting(false)
	nw := netsim.New()
	farm, err := webserver.NewFarm(nw, "203.0.113.240")
	if err != nil {
		b.Fatal(err)
	}
	defer farm.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site, err := farm.StartSite(webserver.Config{
			Domain: "snap-startup.test", IP: "203.0.113.214",
			Pages: webserver.ContentPages("snap-startup.test"),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := site.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// snapPolicyService compiles a small corpus snapshot and returns a
// warmed service plus a query cycle.
func snapPolicyService(b *testing.B) (*policyd.Service, []policyd.Query) {
	b.Helper()
	c, err := corpus.New(context.Background(), corpus.Config{Seed: snapSeed, Scale: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	snap, err := policyd.FromCorpus(context.Background(), c, len(corpus.Snapshots)-1, 8)
	if err != nil {
		b.Fatal(err)
	}
	svc := policyd.NewService(snap)
	hosts := snap.Hosts()
	mix := []string{"GPTBot", "ClaudeBot", "CCBot", "Bytespider", "Googlebot"}
	qs := make([]policyd.Query, 2048)
	for i := range qs {
		qs[i] = policyd.Query{Host: hosts[(i*31)%len(hosts)], Agent: mix[i%len(mix)], Path: "/about.html"}
	}
	for _, q := range qs {
		svc.Decide(q)
	}
	return svc, qs
}

func init() {
	register("policyd_decide", func(b *testing.B) {
		svc, qs := snapPolicyService(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc.Decide(qs[i%len(qs)])
		}
	})

	register("policyd_http", func(b *testing.B) {
		svc, qs := snapPolicyService(b)
		nw := netsim.New()
		ln, err := nw.Listen("203.0.113.213", 80)
		if err != nil {
			b.Fatal(err)
		}
		nw.Register("snap-policyd.test", "203.0.113.213")
		srv := &http.Server{Handler: policyd.NewHandler(svc)}
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.Serve(ln)
		}()
		defer func() {
			srv.Close()
			<-done
		}()
		client := nw.HTTPClient("198.51.100.213")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			resp, err := client.Get("http://snap-policyd.test/v1/decide?agent=" + q.Agent + "&path=/about.html&host=" + q.Host)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
}

func init() {
	register("netsim_http_legacy_dial", func(b *testing.B) {
		netsim.SetLegacyPerRequestDial(true)
		defer netsim.SetLegacyPerRequestDial(false)
		nw := netsim.New()
		site, err := webserver.Start(nw, webserver.WildcardDisallowSite("snap-legacy.test", "203.0.113.212"))
		if err != nil {
			b.Fatal(err)
		}
		defer site.Close()
		client := nw.HTTPClient("198.51.100.211")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Get(site.URL() + "/robots.txt")
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})

	// farm_site_startup vs legacy_site_startup isolates the hosting
	// redesign's unit saving: registering one site with the shared-
	// listener farm against standing up a dedicated per-site server.
	register("farm_site_startup", func(b *testing.B) {
		benchSiteStartup(b, false)
	})
	register("legacy_site_startup", func(b *testing.B) {
		benchSiteStartup(b, true)
	})

	// netsim_http_fast / netsim_http_legacy isolate the PR 6 framing
	// rewrite: the same request loop as netsim_http on the netsim-native
	// fast path (the default) and with the knob forcing stdlib net/http
	// on both client and servers.
	register("netsim_http_fast", func(b *testing.B) {
		benchNetsimHTTP(b, false)
	})
	register("netsim_http_legacy", func(b *testing.B) {
		benchNetsimHTTP(b, true)
	})

	// policyd_http_batch vs policyd_frame_batch is the serving-layer wire
	// comparison: identical 256-query batches from one warmed service,
	// once JSON-over-HTTP, once as binary frames, both over netsim.
	register("policyd_http_batch", func(b *testing.B) {
		svc, qs := snapPolicyService(b)
		nw := netsim.New()
		ln, err := nw.Listen("203.0.113.215", 80)
		if err != nil {
			b.Fatal(err)
		}
		nw.Register("snap-batch.test", "203.0.113.215")
		srv := &http.Server{Handler: policyd.NewHandler(svc)}
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.Serve(ln)
		}()
		defer func() {
			srv.Close()
			<-done
		}()
		client := nw.HTTPClient("198.51.100.215")
		batch := qs[:snapBatchSize]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body, err := json.Marshal(policyd.BatchRequest{Queries: batch})
			if err != nil {
				b.Fatal(err)
			}
			resp, err := client.Post("http://snap-batch.test/v1/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var br policyd.BatchResponse
			err = json.NewDecoder(resp.Body).Decode(&br)
			resp.Body.Close()
			if err != nil || len(br.Decisions) != len(batch) {
				b.Fatalf("batch: %d decisions, err %v", len(br.Decisions), err)
			}
		}
		b.ReportMetric(float64(snapBatchSize), "queries_per_op")
	})

	register("policyd_frame_batch", func(b *testing.B) {
		svc, qs := snapPolicyService(b)
		nw := netsim.New()
		ln, err := nw.Listen("203.0.113.216", 80)
		if err != nil {
			b.Fatal(err)
		}
		go policyd.ServeFrames(ln, svc)
		defer ln.Close()
		conn, err := nw.Dial(context.Background(), "198.51.100.216", "203.0.113.216:80")
		if err != nil {
			b.Fatal(err)
		}
		fc, err := policyd.NewFrameClient(conn)
		if err != nil {
			b.Fatal(err)
		}
		defer fc.Close()
		batch := qs[:snapBatchSize]
		out := make([]policyd.Decision, 0, snapBatchSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err = fc.Decide(batch, out[:0])
			if err != nil || len(out) != len(batch) {
				b.Fatalf("frame batch: %d decisions, err %v", len(out), err)
			}
		}
		b.ReportMetric(float64(snapBatchSize), "queries_per_op")
	})

	// The instrumentation-tax pair: the same request loop as netsim_http
	// with obs recording live (the default everywhere else) and with the
	// no-op knob flipped off. Comparing either against BENCH_pr6.json's
	// uninstrumented netsim_http bounds the metrics overhead, and the
	// pair's mutual delta isolates it exactly.
	register("netsim_http_instrumented", func(b *testing.B) {
		obs.SetEnabled(true)
		benchNetsimHTTP(b, false)
	})
	register("netsim_http_noobs", func(b *testing.B) {
		obs.SetEnabled(false)
		defer obs.SetEnabled(true)
		benchNetsimHTTP(b, false)
	})

	// policyd_decide with recording disabled, against the default
	// (instrumented) policyd_decide above: the decision-counter tax.
	register("policyd_decide_noobs", func(b *testing.B) {
		obs.SetEnabled(false)
		defer obs.SetEnabled(true)
		svc, qs := snapPolicyService(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc.Decide(qs[i%len(qs)])
		}
	})

	register("robots_parse_cached", func(b *testing.B) {
		body := snapRobotsBody()
		cache := robots.NewCache(0)
		b.SetBytes(int64(len(body)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rb := cache.Parse(body); len(rb.Groups) == 0 {
				b.Fatal("no groups")
			}
		}
	})
}

// compileCorpus builds the corpus the compile benchmark pair shares.
func compileCorpus(b *testing.B) *corpus.Corpus {
	b.Helper()
	c, err := corpus.New(context.Background(), corpus.Config{Seed: snapSeed, Scale: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// The snapshot-advance cost pair: a cold month-to-month recompile
// against an incremental one seeded with the previous snapshot, where
// hosts whose normalized robots.txt (and ai.txt/blocker state) did not
// change reuse their compiled shard entries.
func init() {
	const at = corpus.GPTBotAnnouncedIndex + 1

	register("policyd_compile_full", func(b *testing.B) {
		c := compileCorpus(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap, err := policyd.FromCorpus(ctx, c, at, 8)
			if err != nil {
				b.Fatal(err)
			}
			if snap.Len() == 0 {
				b.Fatal("empty snapshot")
			}
		}
	})

	register("policyd_compile_incremental", func(b *testing.B) {
		c := compileCorpus(b)
		ctx := context.Background()
		prev, err := policyd.FromCorpus(ctx, c, at-1, 8)
		if err != nil {
			b.Fatal(err)
		}
		var reused int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap, err := policyd.FromCorpusIncremental(ctx, c, at, 8, prev)
			if err != nil {
				b.Fatal(err)
			}
			reused = snap.ReusedHosts()
			if reused == 0 {
				b.Fatal("incremental compile reused nothing")
			}
		}
		b.ReportMetric(float64(reused), "hosts-reused")
	})
}
