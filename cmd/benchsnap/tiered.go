package main

// Tiered-engine benchmarks: the full engine and the tiered engine at the
// same site count (the apples-to-apples speedup pair), plus the tiered
// engine at 10× the sites (the scale headline). All three report
// sites_per_sec so the regression gate tracks throughput directly.

import (
	"context"
	"testing"

	"repro/internal/scenario"
)

// benchScenarioSites runs the observed-world spec at the given scale on
// either engine and reports throughput.
func benchScenarioSites(b *testing.B, sites int, tiered bool) {
	spec := scenario.Observed(snapSeed, sites, 12)
	var visits float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res *scenario.Result
		var err error
		if tiered {
			res, err = scenario.RunTiered(context.Background(), spec,
				scenario.TierOptions{HotSites: 32, Workers: 4})
		} else {
			res, err = scenario.Run(context.Background(), spec, 4)
		}
		if err != nil {
			b.Fatal(err)
		}
		visits = float64(res.TotalVisits)
	}
	b.ReportMetric(visits, "crawl_visits")
	b.ReportMetric(float64(sites)*float64(b.N)/b.Elapsed().Seconds(), "sites_per_sec")
}

func init() {
	register("scenario_full_1k", func(b *testing.B) {
		benchScenarioSites(b, 1000, false)
	})
	register("scenario_tiered_1k", func(b *testing.B) {
		benchScenarioSites(b, 1000, true)
	})
	register("scenario_tiered_10k", func(b *testing.B) {
		benchScenarioSites(b, 10000, true)
	})
}
