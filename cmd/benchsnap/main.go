// Command benchsnap runs a fixed, reduced-scale subset of the repository
// benchmark suite and writes a JSON snapshot — ns/op, bytes/op,
// allocs/op and each benchmark's custom metrics — seeding the repo's
// performance trajectory. CI runs it on every push and uploads the
// artifact; compare snapshots across commits with the -baseline flag,
// which embeds a previous snapshot and computes speedups:
//
//	go run ./cmd/benchsnap -o BENCH_pr3.json -baseline old.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"text/tabwriter"
	"time"

	"repro/internal/blocking"
	"repro/internal/crawler"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/robots"
	"repro/internal/runstore"
	"repro/internal/scenario"
	"repro/internal/webserver"
)

const snapSeed = 20251028

// result is one benchmark's snapshot entry.
type result struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// snapshot is the file format.
type snapshot struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated"`
	runstore.Attribution
	Benchmarks map[string]result `json:"benchmarks"`
	// Baseline is a previous snapshot's benchmark map, embedded verbatim
	// when -baseline is given, so one file carries the before/after pair.
	Baseline map[string]result `json:"baseline,omitempty"`
	// SpeedupVsBaseline is baseline ns/op divided by current ns/op per
	// benchmark present in both (>1 means faster now).
	SpeedupVsBaseline map[string]float64 `json:"speedup_vs_baseline,omitempty"`
}

type entry struct {
	name string
	fn   func(b *testing.B)
}

// registry holds the suite in execution order. Entries that exercise
// APIs introduced alongside this tool register themselves from extra.go;
// everything in this file exercises the repo's current production paths
// (hosting moved from per-site webserver.Start to the shared-listener
// webserver.Farm, and these entries moved with it), so snapshots track
// what the experiments actually run.
var registry []entry

func register(name string, fn func(b *testing.B)) {
	registry = append(registry, entry{name: name, fn: fn})
}

func init() {
	register("netsim_http", func(b *testing.B) {
		nw := netsim.New()
		farm, err := webserver.NewFarm(nw, "203.0.113.240")
		if err != nil {
			b.Fatal(err)
		}
		defer farm.Close()
		site, err := farm.StartSite(webserver.WildcardDisallowSite("snap.test", "203.0.113.210"))
		if err != nil {
			b.Fatal(err)
		}
		client := nw.HTTPClient("198.51.100.210")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Get(site.URL() + "/robots.txt")
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})

	register("crawler_site_crawl", func(b *testing.B) {
		nw := netsim.New()
		farm, err := webserver.NewFarm(nw, "203.0.113.240")
		if err != nil {
			b.Fatal(err)
		}
		defer farm.Close()
		site, err := farm.StartSite(webserver.Config{
			Domain: "snapcrawl.test", IP: "203.0.113.211",
			Pages: webserver.ContentPages("snapcrawl.test"),
		})
		if err != nil {
			b.Fatal(err)
		}
		cr, err := crawler.New(nw, crawler.Profile{
			Token: "GPTBot", SourceIP: "24.0.1.98", Behavior: crawler.Compliant,
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cr.Crawl(ctx, site.URL()); err != nil {
				b.Fatal(err)
			}
		}
	})

	register("robots_parse", func(b *testing.B) {
		body := snapRobotsBody()
		b.SetBytes(int64(len(body)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rb := robots.ParseString(body); len(rb.Groups) == 0 {
				b.Fatal("no groups")
			}
		}
	})

	register("robots_match", func(b *testing.B) {
		rb := robots.ParseString(snapRobotsBody())
		paths := []string{"/", "/gallery/piece.png", "/blog/2024/post?q=1", "/search"}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rb.Allowed("GPTBot", paths[i%len(paths)])
		}
	})

	register("passive_study", func(b *testing.B) {
		var respected float64
		for i := 0; i < b.N; i++ {
			res, err := measure.RunPassive(context.Background(), snapSeed)
			if err != nil {
				b.Fatal(err)
			}
			respected = 0
			for _, v := range res.Verdicts {
				if v == measure.Respected {
					respected++
				}
			}
		}
		b.ReportMetric(respected, "respecting_crawlers")
	})

	register("active_blocking_survey", func(b *testing.B) {
		var blockers float64
		for i := 0; i < b.N; i++ {
			res, err := blocking.RunSurvey(context.Background(), 200, snapSeed, 8, blocking.DefaultDetector)
			if err != nil {
				b.Fatal(err)
			}
			blockers = float64(res.ActiveBlockers)
		}
		b.ReportMetric(blockers, "active_blockers")
	})

	register("scenario_engine", func(b *testing.B) {
		var visits float64
		for i := 0; i < b.N; i++ {
			res, err := scenario.Run(context.Background(),
				scenario.Observed(snapSeed, 12, 12), 4)
			if err != nil {
				b.Fatal(err)
			}
			visits = float64(res.TotalVisits)
		}
		b.ReportMetric(visits, "crawl_visits")
	})

	// scenario_engine_store is scenario_engine with the run store
	// attached: the pair measures the persistence overhead (acceptance
	// target: <5% over scenario_engine).
	register("scenario_engine_store", func(b *testing.B) {
		st, err := runstore.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		spec := scenario.Observed(snapSeed, 12, 12)
		var visits float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w, err := st.BeginScenario(
				runstore.NewMeta(runstore.KindScenario, spec.Name, spec.Seed, spec.CacheKey()))
			if err != nil {
				b.Fatal(err)
			}
			res, err := scenario.RunObserved(context.Background(), spec, 4, w)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			visits = float64(res.TotalVisits)
		}
		b.ReportMetric(visits, "crawl_visits")
	})
}

// snapRobotsBody renders a realistic multi-group robots.txt.
func snapRobotsBody() string {
	bld := robots.NewBuilder()
	bld.Comment("benchsnap file")
	bld.Group("*").Disallow("/admin/", "/search", "/shop").Allow("/shop/public")
	bld.Group("GPTBot", "CCBot", "ClaudeBot", "Bytespider", "Google-Extended").Disallow("/images/", "/gallery/")
	bld.Group("Googlebot").Disallow("/generated/a/", "/generated/b/", "/generated/c/")
	bld.Sitemap("https://snap.example/sitemap.xml")
	return bld.String()
}

func main() {
	out := flag.String("o", "BENCH_pr3.json", "output path for the JSON snapshot")
	baselinePath := flag.String("baseline", "", "previous snapshot to embed for before/after comparison")
	benchFilter := flag.String("bench", "", "regexp filtering benchmark names (empty = all)")
	count := flag.Int("count", 1, "runs per benchmark; the fastest (min ns/op) run is recorded to damp machine noise")
	maxRegress := flag.Float64("max-regress", 0, "with -baseline: exit 1 if any benchmark's ns/op regresses by more than this fraction (e.g. 0.10 = 10%); 0 disables the gate")
	history := flag.Bool("history", false, "print the per-benchmark trajectory across checked-in BENCH_pr*.json snapshots and exit (no benchmarks run)")
	merge := flag.Bool("merge", false, "merge the benchmark maps of the snapshot files given as arguments into one -o snapshot and exit (no benchmarks run)")
	flag.Parse()
	if *merge {
		if err := mergeSnapshots(*out, flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: -merge: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *history {
		files := flag.Args()
		if len(files) == 0 {
			var err error
			if files, err = filepath.Glob("BENCH_pr*.json"); err != nil || len(files) == 0 {
				fmt.Fprintln(os.Stderr, "benchsnap: -history: no BENCH_pr*.json snapshots found (pass paths as arguments)")
				os.Exit(2)
			}
		}
		if err := printHistory(os.Stdout, files); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *count < 1 {
		*count = 1
	}

	var filter *regexp.Regexp
	if *benchFilter != "" {
		var err error
		if filter, err = regexp.Compile(*benchFilter); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: bad -bench regexp: %v\n", err)
			os.Exit(2)
		}
	}

	snap := snapshot{
		Schema:      "repro-benchsnap/1",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Attribution: runstore.Stamp(),
		Benchmarks:  make(map[string]result),
	}
	for _, e := range registry {
		if filter != nil && !filter.MatchString(e.name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchsnap: running %s...\n", e.name)
		var res result
		for run := 0; run < *count; run++ {
			r := testing.Benchmark(e.fn)
			cand := result{
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if len(r.Extra) > 0 {
				cand.Metrics = make(map[string]float64, len(r.Extra))
				for k, v := range r.Extra {
					cand.Metrics[k] = v
				}
			}
			if run == 0 || cand.NsPerOp < res.NsPerOp {
				res = cand
			}
		}
		snap.Benchmarks[e.name] = res
		fmt.Fprintf(os.Stderr, "benchsnap: %-24s %12.0f ns/op %8d B/op %6d allocs/op\n",
			e.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	var regressions []string
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: reading baseline: %v\n", err)
			os.Exit(1)
		}
		var base snapshot
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: parsing baseline: %v\n", err)
			os.Exit(1)
		}
		snap.Baseline = base.Benchmarks
		snap.SpeedupVsBaseline = make(map[string]float64)
		for name, cur := range snap.Benchmarks {
			if b, ok := base.Benchmarks[name]; ok && cur.NsPerOp > 0 {
				speedup := b.NsPerOp / cur.NsPerOp
				snap.SpeedupVsBaseline[name] = speedup
				if *maxRegress > 0 && cur.NsPerOp > b.NsPerOp*(1+*maxRegress) {
					regressions = append(regressions,
						fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.1f%% slower, budget %.0f%%)",
							name, b.NsPerOp, cur.NsPerOp, (cur.NsPerOp/b.NsPerOp-1)*100, *maxRegress*100))
				}
			}
		}
	}

	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %s (%d benchmarks)\n", *out, len(snap.Benchmarks))
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchsnap: FAIL: %d benchmark(s) regressed beyond the -max-regress budget:\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "benchsnap:   %s\n", r)
		}
		os.Exit(1)
	}
}

// mergeSnapshots combines the benchmark maps of several benchsnap-schema
// files (e.g. one per loadgen process in a fleet run) into a single
// snapshot at out. When two inputs carry the same benchmark name, the
// faster entry (min ns/op) wins, mirroring the -count selection rule;
// its metrics that read as totals across processes (decisions, QPS) stay
// per-process, so give concurrent processes distinct -name values when
// the aggregate matters.
func mergeSnapshots(out string, files []string) error {
	if len(files) == 0 {
		return fmt.Errorf("no input snapshots given")
	}
	merged := snapshot{
		Schema:      "repro-benchsnap/1",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Attribution: runstore.Stamp(),
		Benchmarks:  make(map[string]result),
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		var s snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if len(s.Benchmarks) == 0 {
			return fmt.Errorf("%s: no benchmarks (schema %q)", f, s.Schema)
		}
		for name, r := range s.Benchmarks {
			if prev, ok := merged.Benchmarks[name]; ok {
				fmt.Fprintf(os.Stderr, "benchsnap: -merge: %s appears in multiple inputs; keeping the faster run\n", name)
				if prev.NsPerOp <= r.NsPerOp {
					continue
				}
			}
			merged.Benchmarks[name] = r
		}
	}
	data, err := json.MarshalIndent(&merged, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %s (%d benchmarks merged from %d files)\n",
		out, len(merged.Benchmarks), len(files))
	return nil
}

// prNumber orders snapshot files by the PR number embedded in the
// conventional BENCH_pr<N>.json name; other names sort after, by name.
var prNumberRe = regexp.MustCompile(`pr(\d+)`)

func prNumber(path string) int {
	if m := prNumberRe.FindStringSubmatch(filepath.Base(path)); m != nil {
		if n, err := strconv.Atoi(m[1]); err == nil {
			return n
		}
	}
	return 1 << 30
}

// printHistory renders each benchmark's trajectory — ns/op and
// allocs/op per snapshot, oldest first — across the given snapshot
// files. The final column shows the overall trend: first-to-last ns/op
// speedup.
func printHistory(w io.Writer, files []string) error {
	sort.Slice(files, func(i, j int) bool {
		ni, nj := prNumber(files[i]), prNumber(files[j])
		if ni != nj {
			return ni < nj
		}
		return files[i] < files[j]
	})

	snaps := make([]snapshot, len(files))
	names := make(map[string]struct{})
	for i, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &snaps[i]); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		for name := range snaps[i].Benchmarks {
			names[name] = struct{}{}
		}
	}
	ordered := make([]string, 0, len(names))
	for name := range names {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)

	labels := make([]string, len(files))
	for i, f := range files {
		labels[i] = trimSnapName(f)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark (ns/op | allocs)\t%s\ttrend\n", strings.Join(labels, "\t"))
	for _, name := range ordered {
		cells := make([]string, len(snaps))
		var first, last float64
		for i, s := range snaps {
			r, ok := s.Benchmarks[name]
			if !ok {
				cells[i] = "-"
				continue
			}
			cells[i] = fmt.Sprintf("%s|%d", formatNs(r.NsPerOp), r.AllocsPerOp)
			if first == 0 {
				first = r.NsPerOp
			}
			last = r.NsPerOp
		}
		trend := "-"
		if first > 0 && last > 0 {
			trend = fmt.Sprintf("%.2fx", first/last)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", name, strings.Join(cells, "\t"), trend)
	}
	return tw.Flush()
}

// trimSnapName reduces BENCH_pr8.json to pr8 for column headers.
func trimSnapName(path string) string {
	name := strings.TrimSuffix(filepath.Base(path), ".json")
	return strings.TrimPrefix(name, "BENCH_")
}

// formatNs renders ns/op compactly: ns below 10µs, µs below 10ms, else ms.
func formatNs(ns float64) string {
	switch {
	case ns >= 1e7:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e4:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
