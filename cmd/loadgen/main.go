// Command loadgen drives mixed decision workloads against the policyd
// service and reports throughput and latency percentiles, proving the
// serving-layer numbers the way cmd/benchsnap proves the batch ones.
//
// By default it compiles a corpus snapshot and hammers the service
// in-process (the pure engine cost); with -target it speaks the JSON
// API to a running cmd/policyd or cmd/policygw over TCP, and -wire
// binary switches to the length-prefixed frame protocol (point -target
// at the daemon's -frame-addr). Hosts are drawn from a zipf popularity
// distribution over the corpus domains, agents from a configurable mix,
// and queries are issued singly or in batches.
//
// -target takes a comma-separated endpoint list: workers round-robin
// across the endpoints and the decision mix is reported per endpoint,
// so one process can drive a gateway and a direct replica side by side
// (or every replica of a fleet) and expose any routing skew. Rate
// limiting is handled on both wires — HTTP 429 (honoring
// X-Retry-After-Ms, falling back to Retry-After) and the binary
// rate-limit frame both back off and retry, with throttle counts
// reported at the end.
//
//	go run ./cmd/loadgen -scale 0.05 -n 500000
//	go run ./cmd/loadgen -target http://localhost:8473 -batch 64 -concurrency 4
//	go run ./cmd/loadgen -target localhost:9474,localhost:8474 -wire binary -batch 256
//
// Against a gateway, the end of a stored run (-store) also captures
// /v1/quotas as the quotas.json semantic segment, so cmd/rundiff
// surfaces per-tenant quota shifts across runs.
//
// Latency percentiles come from a fixed-size per-worker reservoir
// (unbiased sample of the sampled calls), so arbitrarily long runs hold
// a bounded latency footprint and the drive loop stays allocation-free.
//
// The -o snapshot uses the benchsnap JSON schema, so serving
// performance lands in the same BENCH_* artifact stream as the batch
// benchmarks; -min-qps and -max-allocs turn the run into a CI gate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/policyd"
	"repro/internal/runstore"
	"repro/internal/stats"
)

// mCallLatency mirrors the reservoir: every latency fed to a reservoir
// is also observed here, so the obs histogram and the reservoir
// percentiles describe the same sample stream and can cross-check each
// other (see TestReservoirHistogramAgree).
var mCallLatency = obs.NewHistogram("loadgen_call_latency_ns",
	"Sampled per-call latency of the drive loop, ns.")

// result and snapshot mirror cmd/benchsnap's JSON schema so serving
// snapshots merge into the same artifact stream.
type result struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type snapshot struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated"`
	runstore.Attribution
	Benchmarks map[string]result `json:"benchmarks"`
}

var defaultAgents = "GPTBot,ClaudeBot,CCBot,Bytespider,Googlebot"

func main() {
	target := flag.String("target", "", "comma-separated endpoints of running policyd/policygw daemons (empty = in-process service)")
	name := flag.String("name", "", "benchmark entry and run name (default derived from the mode)")
	seed := flag.Int64("seed", stats.DefaultSeed, "corpus seed (must match the target's)")
	scale := flag.Float64("scale", 0.05, "corpus scale (must match the target's)")
	snapIdx := flag.Int("snap", len(corpus.Snapshots)-1, "corpus snapshot index (in-process mode)")
	agentList := flag.String("agents", defaultAgents, "comma-separated agent mix")
	wire := flag.String("wire", "json", "remote wire protocol: json (the HTTP API) or binary (the frame protocol)")
	batch := flag.Int("batch", 1, "queries per call (1 = single-decision API)")
	total := flag.Int("n", 200_000, "total decisions to issue")
	concurrency := flag.Int("concurrency", 1, "parallel workload drivers")
	zipfS := flag.Float64("zipf", 1.1, "zipf skew for host popularity (0 = uniform)")
	out := flag.String("o", "", "write a benchsnap-format JSON snapshot here")
	storeDir := flag.String("store", "", "persist the run to this run-store directory (see cmd/rundiff)")
	minQPS := flag.Float64("min-qps", 0, "fail unless decisions/sec reaches this")
	maxAllocs := flag.Int64("max-allocs", -1, "fail if in-process allocs/op exceed this (-1 = no gate)")
	metrics := flag.String("metrics", "", "write obs metrics (Prometheus text) to this file at end of run (- = stderr)")
	cpuprof := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprof := flag.String("memprofile", "", "write a heap profile to this file at end of run")
	flag.Parse()

	stopCPU, err := obs.StartCPUProfile(*cpuprof)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	err = run(*target, *name, *seed, *scale, *snapIdx, *agentList, *wire, *batch, *total,
		*concurrency, *zipfS, *out, *storeDir, *minQPS, *maxAllocs)
	stopCPU()
	if err == nil {
		err = obs.WriteHeapProfile(*memprof)
	}
	if err == nil {
		err = obs.DumpMetrics(*metrics)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

func run(target, name string, seed int64, scale float64, snapIdx int, agentList, wire string,
	batch, total, concurrency int, zipfS float64, out, storeDir string, minQPS float64, maxAllocs int64) error {
	if batch < 1 {
		batch = 1
	}
	if concurrency < 1 {
		concurrency = 1
	}
	switch wire {
	case "json", "binary":
	default:
		return fmt.Errorf("unknown -wire %q (want json or binary)", wire)
	}
	var targets []string
	for _, t := range strings.Split(target, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, strings.TrimRight(t, "/"))
		}
	}
	if wire == "binary" && len(targets) == 0 {
		return fmt.Errorf("-wire binary needs -target (a cmd/policyd or cmd/policygw -frame-addr)")
	}
	if concurrency < len(targets) {
		// Every endpoint gets at least one worker, or its mix would be
		// silently empty.
		concurrency = len(targets)
	}
	ctx := context.Background()

	c, err := corpus.New(ctx, corpus.Config{Seed: seed, Scale: scale})
	if err != nil {
		return err
	}
	hosts := make([]string, len(c.Sites()))
	for i, s := range c.Sites() {
		hosts[i] = s.Domain
	}
	agents := strings.Split(agentList, ",")
	for i := range agents {
		agents[i] = strings.TrimSpace(agents[i])
	}

	var svc *policyd.Service
	if len(targets) == 0 {
		snap, err := policyd.FromCorpus(ctx, c, snapIdx, 0)
		if err != nil {
			return err
		}
		svc = policyd.NewService(snap)
		fmt.Fprintf(os.Stderr, "loadgen: in-process %s\n", snap)
	} else {
		fmt.Fprintf(os.Stderr, "loadgen: driving %s with %d corpus hosts\n",
			strings.Join(targets, ", "), len(hosts))
	}

	pool := buildWorkload(seed, hosts, agents, zipfS, minInt(total, 1<<16))
	driver := &driver{
		svc: svc, targets: targets, wire: wire,
		pool: pool, batch: batch,
	}
	latRand := stats.NewRand(seed).Fork("loadgen-latency")
	// Warm the roster/memo paths (and every endpoint) so the timed run
	// measures steady state.
	for e := 0; e < maxInt(1, len(targets)); e++ {
		warm := workerOut{res: newReservoir(latRand.Fork(fmt.Sprintf("warm-%d", e)))}
		if err := driver.drive(e, 0, minInt(len(pool), 4096), &warm); err != nil {
			return err
		}
	}

	// Timed run: each worker walks an offset slice of the cycle so the
	// union covers the pool, sampling every 16th call's latency into a
	// fixed-size reservoir. Workers round-robin across the endpoints.
	perWorker := total / concurrency
	outs := make([]workerOut, concurrency)
	for w := range outs {
		outs[w].res = newReservoir(latRand.Fork(fmt.Sprintf("worker-%d", w)))
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := &outs[w]
			o.err = driver.drive(w, w*perWorker, perWorker, o)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	var counts [3]int64
	var sampled, throttled, swaps int64
	var maxLat time.Duration
	perEndpoint := make([][3]int64, maxInt(1, len(targets)))
	for w, o := range outs {
		if o.err != nil {
			return o.err
		}
		lats = append(lats, o.res.samples...)
		sampled += o.res.seen
		throttled += o.throttled
		swaps += o.swaps
		if o.res.max > maxLat {
			maxLat = o.res.max
		}
		e := w % len(perEndpoint)
		for i := range counts {
			counts[i] += o.counts[i]
			perEndpoint[e][i] += o.counts[i]
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	issued := perWorker * concurrency
	qps := float64(issued) / elapsed.Seconds()

	// The zero-allocation contract is measured in-process on the exact
	// call the hot path serves; remote runs measure the wire, not the
	// engine, so the gate does not apply there.
	allocsPerOp := int64(-1)
	if svc != nil {
		allocsPerOp = measureAllocs(svc, pool, batch)
	}

	decided := counts[0] + counts[1] + counts[2]
	fmt.Fprintf(os.Stderr, "loadgen: %d decisions in %.2fs — %.0f decisions/sec (batch=%d, concurrency=%d)\n",
		issued, elapsed.Seconds(), qps, batch, concurrency)
	if len(lats) > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: per-call latency p50=%s p90=%s p99=%s max=%s (%d of %d sampled calls held)\n",
			pctile(lats, 0.50), pctile(lats, 0.90), pctile(lats, 0.99), maxLat, len(lats), sampled)
	}
	if decided > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: decision mix: allow %.1f%% deny %.1f%% block %.1f%%\n",
			100*float64(counts[0])/float64(decided),
			100*float64(counts[1])/float64(decided),
			100*float64(counts[2])/float64(decided))
	}
	if len(targets) > 1 {
		for e, m := range perEndpoint {
			if n := m[0] + m[1] + m[2]; n > 0 {
				fmt.Fprintf(os.Stderr, "loadgen: %s: %d decisions — allow %.1f%% deny %.1f%% block %.1f%%\n",
					targets[e], n, 100*float64(m[0])/float64(n), 100*float64(m[1])/float64(n), 100*float64(m[2])/float64(n))
			}
		}
	}
	if throttled > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: rate limited %d times (backed off per Retry-After, then retried)\n", throttled)
	}
	if swaps > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: observed %d snapshot rollovers mid-run\n", swaps)
	}
	if allocsPerOp >= 0 {
		fmt.Fprintf(os.Stderr, "loadgen: allocs/op on the cached hot path: %d\n", allocsPerOp)
	}

	benchName := name
	if benchName == "" {
		benchName = "policyd_loadgen_inproc"
		if len(targets) > 0 {
			benchName = "policyd_loadgen_remote"
		}
	}
	var snapData []byte
	if out != "" || storeDir != "" {
		snapData, err = buildSnapshot(benchName, issued, elapsed, qps, lats, counts,
			throttled, swaps, allocsPerOp, batch, concurrency)
		if err != nil {
			return err
		}
	}
	if out != "" {
		if err := os.WriteFile(out, snapData, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", out)
	}
	if storeDir != "" {
		st, err := runstore.Open(storeDir)
		if err != nil {
			return err
		}
		runName := name
		if runName == "" {
			runName = "loadgen-inproc"
			if len(targets) > 0 {
				runName = "loadgen-remote"
			}
		}
		specKey := fmt.Sprintf("loadgen|target=%s|scale=%g|snap=%d|agents=%s|wire=%s|batch=%d|n=%d|conc=%d|zipf=%g",
			strings.Join(targets, "+"), scale, snapIdx, agentList, wire, batch, total, concurrency, zipfS)
		mix := runstore.DecisionMix{
			Issued: int64(issued),
			Allow:  counts[0], Deny: counts[1], Block: counts[2],
			Batch: batch, Wire: wire,
		}
		// A gateway target exposes its per-tenant quota ledger; capture it
		// as the quotas.json semantic segment. Plain policyd replicas
		// don't serve /v1/quotas — that's "no segment", not an error.
		quotas := fetchQuotas(targets)
		id, err := st.SaveLoadgenQuotas(runstore.NewMeta(runstore.KindLoadgen, runName, seed, specKey), mix, quotas, snapData)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadgen: stored run %s in %s\n", id, storeDir)
	}
	if minQPS > 0 && qps < minQPS {
		return fmt.Errorf("throughput gate failed: %.0f decisions/sec < required %.0f", qps, minQPS)
	}
	if maxAllocs >= 0 && allocsPerOp > maxAllocs {
		return fmt.Errorf("allocation gate failed: %d allocs/op > allowed %d", allocsPerOp, maxAllocs)
	}
	return nil
}

// buildWorkload pregenerates a query cycle: hosts zipf-ranked by corpus
// order (top-tier sites first, mirroring real popularity), agents drawn
// from the mix, paths from a fixed representative set.
func buildWorkload(seed int64, hosts, agents []string, zipfS float64, n int) []policyd.Query {
	paths := []string{
		"/", "/about.html", "/admin/panel", "/images/art.png",
		"/gallery/2024/piece.jpg", "/blog/post?id=7", "/search?q=x",
	}
	rn := stats.NewRand(seed).Fork("loadgen")
	cum := make([]float64, len(hosts))
	sum := 0.0
	for i := range hosts {
		w := 1.0
		if zipfS > 0 {
			w = 1.0 / math.Pow(float64(i+1), zipfS)
		}
		sum += w
		cum[i] = sum
	}
	qs := make([]policyd.Query, n)
	for i := range qs {
		u := rn.Float64() * sum
		h := sort.SearchFloat64s(cum, u)
		if h >= len(hosts) {
			h = len(hosts) - 1
		}
		qs[i] = policyd.Query{
			Host:  hosts[h],
			Agent: agents[rn.Intn(len(agents))],
			Path:  paths[rn.Intn(len(paths))],
		}
	}
	return qs
}

// reservoirSize bounds the per-worker latency sample: enough for stable
// p99 reads, independent of -n.
const reservoirSize = 4096

// reservoir is a fixed-size uniform sample (Vitter's Algorithm R) of the
// latencies fed to it, plus the exact maximum. add performs no
// allocations after construction, which keeps the drive loop's report
// path off the garbage collector at -n 1000000+.
type reservoir struct {
	samples []time.Duration
	seen    int64
	max     time.Duration
	rn      *stats.Rand
}

func newReservoir(rn *stats.Rand) *reservoir {
	return &reservoir{samples: make([]time.Duration, 0, reservoirSize), rn: rn}
}

func (r *reservoir) add(d time.Duration) {
	mCallLatency.Observe(uint64(d))
	if d > r.max {
		r.max = d
	}
	r.seen++
	if len(r.samples) < cap(r.samples) {
		r.samples = append(r.samples, d)
		return
	}
	if j := r.rn.Intn(int(r.seen)); j < len(r.samples) {
		r.samples[j] = d
	}
}

// workerOut accumulates one worker's share of the run: its latency
// reservoir, action counts, rate-limit backoffs, and the snapshot
// rollovers it observed on the wire.
type workerOut struct {
	res       *reservoir
	counts    [3]int64
	throttled int64
	swaps     int64
	err       error
}

// driver issues the workload in-process, over the JSON HTTP API, or over
// the binary frame protocol. With multiple targets, worker w drives
// targets[w mod len(targets)].
type driver struct {
	svc     *policyd.Service
	targets []string
	wire    string
	pool    []policyd.Query
	batch   int

	clientOnce sync.Once
	client     *http.Client
}

// endpoint picks worker w's target ("" in-process).
func (d *driver) endpoint(w int) string {
	if len(d.targets) == 0 {
		return ""
	}
	return d.targets[w%len(d.targets)]
}

// drive issues n decisions starting at pool offset off as worker w,
// feeding every 16th call's latency into o.res and accumulating the
// action mix. Rate-limited calls sleep the server's advertised backoff
// and retry — a throttle shapes traffic, it never fails the run.
func (d *driver) drive(worker, off, n int, o *workerOut) error {
	const sampleEvery = 16
	tgt := d.endpoint(worker)
	qs := make([]policyd.Query, 0, d.batch)
	fill := func(done int) []policyd.Query {
		qs = qs[:0]
		for len(qs) < d.batch && done+len(qs) < n {
			qs = append(qs, d.pool[(off+done+len(qs))%len(d.pool)])
		}
		return qs
	}

	if d.svc != nil || d.wire == "binary" {
		// Both the in-process engine and the frame protocol answer with
		// []policyd.Decision into a reused buffer — the loop is identical
		// apart from the call.
		var fc *policyd.FrameClientV2
		lastVersion := ""
		if d.svc == nil {
			conn, err := net.Dial("tcp", frameAddr(tgt))
			if err != nil {
				return fmt.Errorf("remote %s: %w", tgt, err)
			}
			fc, err = policyd.NewFrameClientV2(conn)
			if err != nil {
				return fmt.Errorf("remote %s: %w", tgt, err)
			}
			defer fc.Close()
		}
		out := make([]policyd.Decision, 0, d.batch)
		calls := 0
		for done := 0; done < n; {
			qs := fill(done)
			sample := calls%sampleEvery == 0
			var t0 time.Time
			if sample {
				t0 = time.Now()
			}
			switch {
			case d.svc != nil && d.batch == 1:
				out = append(out[:0], d.svc.Decide(qs[0]))
			case d.svc != nil:
				out = d.svc.DecideBatch(qs, out[:0])
			default:
				for {
					var version string
					var err error
					out, version, err = fc.Decide(qs, out[:0])
					var rle *policyd.RateLimitError
					if errors.As(err, &rle) {
						o.throttled++
						time.Sleep(rle.RetryAfter)
						continue
					}
					if err != nil {
						return fmt.Errorf("remote %s: %w", tgt, err)
					}
					if version != lastVersion {
						if lastVersion != "" {
							o.swaps++
						}
						lastVersion = version
					}
					break
				}
			}
			if sample {
				res := o.res
				res.add(time.Since(t0))
			}
			for _, dec := range out {
				o.counts[dec.Action]++
			}
			done += len(qs)
			calls++
		}
		return nil
	}

	d.clientOnce.Do(func() { d.client = &http.Client{Timeout: 30 * time.Second} })
	calls := 0
	lastVersion := ""
	for done := 0; done < n; {
		qs := fill(done)
		t0 := time.Now()
		var decs []policyd.DecisionJSON
		for {
			var retryAfter time.Duration
			var version string
			var err error
			decs, version, retryAfter, err = d.remote(tgt, qs)
			if err != nil {
				return fmt.Errorf("remote %s: %w", tgt, err)
			}
			if retryAfter > 0 {
				o.throttled++
				time.Sleep(retryAfter)
				continue
			}
			if version != "" && version != lastVersion {
				if lastVersion != "" {
					o.swaps++
				}
				lastVersion = version
			}
			break
		}
		if calls%sampleEvery == 0 {
			o.res.add(time.Since(t0))
		}
		for _, dec := range decs {
			switch dec.Action {
			case "allow":
				o.counts[0]++
			case "deny":
				o.counts[1]++
			case "block":
				o.counts[2]++
			}
		}
		done += len(qs)
		calls++
	}
	return nil
}

// frameAddr normalizes -target for the frame protocol: an http:// URL
// form is tolerated and reduced to its host:port.
func frameAddr(target string) string {
	addr := strings.TrimPrefix(target, "http://")
	return strings.TrimSuffix(addr, "/")
}

// retryAfterOf reads a 429's backoff: X-Retry-After-Ms (exact
// milliseconds, the gateway's extension header) preferred, standard
// Retry-After seconds as fallback, 100ms when neither parses.
func retryAfterOf(resp *http.Response) time.Duration {
	if ms := resp.Header.Get("X-Retry-After-Ms"); ms != "" {
		var n int64
		if _, err := fmt.Sscanf(ms, "%d", &n); err == nil && n > 0 {
			return time.Duration(n) * time.Millisecond
		}
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		var n int64
		if _, err := fmt.Sscanf(s, "%d", &n); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 100 * time.Millisecond
}

// remote issues one API call for the query group against tgt. A 429
// returns a positive retryAfter and no decisions; the serving snapshot
// version comes from the X-Policyd-Version response header when the
// server sends one (the gateway does).
func (d *driver) remote(tgt string, qs []policyd.Query) (decs []policyd.DecisionJSON, version string, retryAfter time.Duration, err error) {
	base := tgt
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	var resp *http.Response
	if d.batch == 1 {
		q := qs[0]
		u := base + "/v1/decide?host=" + url.QueryEscape(q.Host) +
			"&agent=" + url.QueryEscape(q.Agent) + "&path=" + url.QueryEscape(q.Path)
		resp, err = d.client.Get(u)
	} else {
		var body []byte
		body, err = json.Marshal(policyd.BatchRequest{Queries: qs})
		if err != nil {
			return nil, "", 0, err
		}
		resp, err = d.client.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	}
	if err != nil {
		return nil, "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return nil, "", retryAfterOf(resp), nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, "", 0, fmt.Errorf("%s: %s", resp.Status, msg)
	}
	version = resp.Header.Get("X-Policyd-Version")
	if d.batch == 1 {
		var dj policyd.DecisionJSON
		if err := json.NewDecoder(resp.Body).Decode(&dj); err != nil {
			return nil, "", 0, err
		}
		return []policyd.DecisionJSON{dj}, version, 0, nil
	}
	var br policyd.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, "", 0, err
	}
	return br.Decisions, version, 0, nil
}

// fetchQuotas asks each target for its gateway quota ledger, returning
// the first that answers. Plain replicas 404 here; only gateways carry
// the endpoint.
func fetchQuotas(targets []string) *runstore.QuotaAccounting {
	client := &http.Client{Timeout: 10 * time.Second}
	for _, tgt := range targets {
		base := tgt
		if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
			base = "http://" + base
		}
		resp, err := client.Get(base + "/v1/quotas")
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		var acc runstore.QuotaAccounting
		err = json.NewDecoder(resp.Body).Decode(&acc)
		resp.Body.Close()
		if err == nil {
			return &acc
		}
	}
	return nil
}

// measureAllocs reports steady-state allocations per call on the warmed
// in-process path.
func measureAllocs(svc *policyd.Service, pool []policyd.Query, batch int) int64 {
	n := minInt(len(pool), 1024)
	if batch == 1 {
		i := 0
		return int64(testing.AllocsPerRun(500, func() {
			svc.Decide(pool[i%n])
			i++
		}))
	}
	qs := pool[:minInt(batch, n)]
	out := make([]policyd.Decision, 0, len(qs))
	return int64(testing.AllocsPerRun(500, func() {
		out = svc.DecideBatch(qs, out[:0])
	}))
}

func buildSnapshot(name string, issued int, elapsed time.Duration, qps float64,
	lats []time.Duration, counts [3]int64, throttled, swaps, allocs int64, batch, concurrency int) ([]byte, error) {
	res := result{
		Iterations: issued,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(issued),
		Metrics: map[string]float64{
			"decisions_per_sec": qps,
			"batch":             float64(batch),
			"concurrency":       float64(concurrency),
			"allow":             float64(counts[0]),
			"deny":              float64(counts[1]),
			"block":             float64(counts[2]),
		},
	}
	if throttled > 0 {
		res.Metrics["rate_limited"] = float64(throttled)
	}
	if swaps > 0 {
		res.Metrics["snapshot_rollovers"] = float64(swaps)
	}
	if allocs >= 0 {
		res.AllocsPerOp = allocs
	}
	if len(lats) > 0 {
		res.Metrics["p50_ns"] = float64(pctile(lats, 0.50).Nanoseconds())
		res.Metrics["p90_ns"] = float64(pctile(lats, 0.90).Nanoseconds())
		res.Metrics["p99_ns"] = float64(pctile(lats, 0.99).Nanoseconds())
	}
	snap := snapshot{
		Schema:      "repro-benchsnap/1",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Attribution: runstore.Stamp(),
		Benchmarks:  map[string]result{name: res},
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// pctile reads the q-quantile from sorted latencies.
func pctile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
