package main

import (
	"context"
	"net"
	"sort"
	"testing"
	"time"

	"repro/internal/policyd"
	"repro/internal/stats"
)

func TestReservoirBelowCapKeepsEverything(t *testing.T) {
	r := newReservoir(stats.NewRand(1).Fork("t"))
	for i := 1; i <= 100; i++ {
		r.add(time.Duration(i))
	}
	if len(r.samples) != 100 || r.seen != 100 {
		t.Fatalf("len=%d seen=%d, want 100/100", len(r.samples), r.seen)
	}
	for i, d := range r.samples {
		if d != time.Duration(i+1) {
			t.Fatalf("sample %d = %d, want insertion order below cap", i, d)
		}
	}
	if r.max != 100 {
		t.Fatalf("max = %d, want 100", r.max)
	}
}

func TestReservoirBoundedAndUnbiased(t *testing.T) {
	const n = 200_000
	r := newReservoir(stats.NewRand(7).Fork("t"))
	for i := 1; i <= n; i++ {
		r.add(time.Duration(i))
	}
	if len(r.samples) != reservoirSize {
		t.Fatalf("len = %d, want the %d cap", len(r.samples), reservoirSize)
	}
	if r.seen != n {
		t.Fatalf("seen = %d, want %d", r.seen, n)
	}
	if r.max != n {
		t.Fatalf("max = %d, want the exact maximum %d", r.max, n)
	}
	// Unbiased sampling: the held sample's mean must sit near the stream
	// mean (n/2). A hopelessly biased reservoir (e.g. keeping only the
	// first or last cap-full) would be off by ~50%.
	var sum float64
	for _, d := range r.samples {
		sum += float64(d)
	}
	mean := sum / float64(len(r.samples))
	if mean < 0.45*n/2 || mean > 1.55*n/2 {
		t.Fatalf("sample mean %.0f too far from stream mean %d", mean, n/2)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	build := func() []time.Duration {
		r := newReservoir(stats.NewRand(42).Fork("same"))
		for i := 0; i < 50_000; i++ {
			r.add(time.Duration(i))
		}
		return r.samples
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d diverged across identical seeds: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestReservoirAddDoesNotAllocate(t *testing.T) {
	r := newReservoir(stats.NewRand(3).Fork("t"))
	for i := 0; i < 2*reservoirSize; i++ {
		r.add(time.Duration(i)) // past the cap, into replacement mode
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		r.add(time.Duration(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("reservoir.add allocates %.1f per call in steady state, want 0", allocs)
	}
}

// TestReservoirHistogramAgree cross-checks the two latency pipelines:
// reservoir.add feeds every sample to both the reservoir and the obs
// histogram, so below the reservoir cap (where the reservoir holds the
// complete stream) the reservoir's exact percentiles must land inside
// the histogram's quantile bucket at the same rank definition.
func TestReservoirHistogramAgree(t *testing.T) {
	before := mCallLatency.Snapshot()
	r := newReservoir(stats.NewRand(11).Fork("xcheck"))
	rn := stats.NewRand(12).Fork("lat")
	const n = 3000 // < reservoirSize: the reservoir keeps everything
	for i := 0; i < n; i++ {
		// A latency-shaped spread: ~1µs..~500µs with a heavy-ish tail.
		d := time.Duration(1000 + rn.Intn(500_000))
		r.add(d)
	}
	delta := mCallLatency.Snapshot().Sub(before)
	if delta.Count != n {
		t.Fatalf("histogram saw %d samples, reservoir fed %d", delta.Count, n)
	}

	sorted := append([]time.Duration{}, r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.50, 0.90, 0.99} {
		exact := uint64(pctile(sorted, q))
		lo, hi := delta.Quantile(q)
		if exact <= lo || exact > hi {
			t.Errorf("q=%.2f: reservoir %d outside histogram bucket (%d, %d]", q, exact, lo, hi)
		}
	}
}

func TestFrameAddr(t *testing.T) {
	for in, want := range map[string]string{
		"localhost:8474":         "localhost:8474",
		"http://localhost:8474":  "localhost:8474",
		"http://localhost:8474/": "localhost:8474",
		"10.1.2.3:99":            "10.1.2.3:99",
	} {
		if got := frameAddr(in); got != want {
			t.Errorf("frameAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestDriveBinaryWireMatchesInProcess serves a small snapshot over the
// frame protocol on a loopback listener and checks the binary drive path
// returns the exact decision mix the in-process path computes.
func TestDriveBinaryWireMatchesInProcess(t *testing.T) {
	b := &policyd.Builder{Shards: 2}
	b.Add("allow.test", policyd.HostConfig{})
	b.Add("deny.test", policyd.HostConfig{RobotsTxt: "User-agent: *\nDisallow: /\n"})
	b.Add("block.test", policyd.HostConfig{Blocklist: []string{"GPTBot"}})
	snap, err := b.Build(context.Background(), "drive-test", 1)
	if err != nil {
		t.Fatal(err)
	}
	svc := policyd.NewService(snap)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go policyd.ServeFrames(ln, svc)

	pool := []policyd.Query{
		{Host: "allow.test", Agent: "GPTBot", Path: "/"},
		{Host: "deny.test", Agent: "GPTBot", Path: "/page"},
		{Host: "block.test", Agent: "GPTBot", Path: "/"},
		{Host: "allow.test", Agent: "ClaudeBot", Path: "/x"},
	}
	const n = 400

	inproc := &driver{svc: svc, pool: pool, batch: 8}
	inOut := workerOut{res: newReservoir(stats.NewRand(1).Fork("a"))}
	if err := inproc.drive(0, 0, n, &inOut); err != nil {
		t.Fatal(err)
	}

	binary := &driver{targets: []string{ln.Addr().String()}, wire: "binary", pool: pool, batch: 8}
	binOut := workerOut{res: newReservoir(stats.NewRand(1).Fork("b"))}
	if err := binary.drive(0, 0, n, &binOut); err != nil {
		t.Fatal(err)
	}

	if inOut.counts != binOut.counts {
		t.Fatalf("decision mix diverged: in-process %v, binary wire %v", inOut.counts, binOut.counts)
	}
	if total := binOut.counts[0] + binOut.counts[1] + binOut.counts[2]; total != n {
		t.Fatalf("binary wire decided %d of %d queries", total, n)
	}
	if binOut.res.seen == 0 {
		t.Fatal("no latencies sampled")
	}
}
