// Command policyd serves the crawl-policy decision service over real
// TCP: it builds the longitudinal corpus at the requested scale,
// compiles one snapshot into the internal/policyd index, and answers
// the JSON API (/v1/decide, /v1/batch, /v1/stats, /healthz).
//
//	go run ./cmd/policyd -addr :8473 -scale 0.1 -snap 14
//	curl 'localhost:8473/v1/decide?host=<domain>&agent=GPTBot&path=/'
//
// With -advance the daemon hot-reloads through the corpus snapshots on
// a timer, demonstrating atomic snapshot swaps under live traffic; pair
// it with cmd/loadgen to watch the decision mix shift as the simulated
// months pass.
//
// -frame-addr opens a second listener speaking the binary frame protocol
// (see internal/policyd/frame.go) for batch clients that want to skip
// HTTP and JSON entirely; drive it with cmd/loadgen -wire binary.
//
// -watch-addr opens a version-watch listener (one version line per
// snapshot swap); cmd/policygw follows it to coordinate fleet-wide hot
// reloads. Month advances with -advance recompile incrementally,
// reusing compiled host policies whose sources are unchanged under the
// robots parse-cache normalization.
//
// -metrics-addr opens an operational side listener serving the obs
// registry at /metrics (Prometheus text; ?format=json for JSON) and the
// stdlib profiler under /debug/pprof/ — kept off the service port so
// scrapes and profiles never contend with decision traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/policyd"
	"repro/internal/stats"
)

func main() {
	addr := flag.String("addr", ":8473", "TCP listen address")
	frameAddr := flag.String("frame-addr", "", "second TCP listen address for the binary frame protocol (empty = off)")
	watchAddr := flag.String("watch-addr", "", "TCP listen address announcing snapshot versions to watchers, one line per swap (empty = off)")
	metricsAddr := flag.String("metrics-addr", "", "side TCP listen address for /metrics and /debug/pprof/ (empty = off)")
	seed := flag.Int64("seed", stats.DefaultSeed, "corpus seed")
	scale := flag.Float64("scale", 0.05, "corpus scale (1.0 = 40,455 hosts)")
	snapIdx := flag.Int("snap", len(corpus.Snapshots)-1, "corpus snapshot index to serve (0-14)")
	advance := flag.Duration("advance", 0, "hot-reload to the next corpus snapshot on this interval (0 = off)")
	workers := flag.Int("workers", 0, "compile workers (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(*addr, *frameAddr, *watchAddr, *metricsAddr, *seed, *scale, *snapIdx, *advance, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "policyd: %v\n", err)
		os.Exit(1)
	}
}

// metricsMux assembles the side listener's handler: the obs registry
// plus the pprof endpoints the stdlib normally hangs off DefaultServeMux.
func metricsMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(addr, frameAddr, watchAddr, metricsAddr string, seed int64, scale float64, snapIdx int, advance time.Duration, workers int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	c, err := corpus.New(ctx, corpus.Config{Seed: seed, Scale: scale, Workers: workers})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "policyd: corpus ready (%d hosts, %.1fs)\n",
		len(c.Sites()), time.Since(start).Seconds())

	if snapIdx < 0 || snapIdx >= len(corpus.Snapshots) {
		snapIdx = len(corpus.Snapshots) - 1
	}
	snap, err := policyd.FromCorpus(ctx, c, snapIdx, workers)
	if err != nil {
		return err
	}
	svc := policyd.NewService(snap)
	fmt.Fprintf(os.Stderr, "policyd: serving %s on %s\n", snap, addr)

	srv := &http.Server{Addr: addr, Handler: policyd.NewHandler(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	var metricsSrv *http.Server
	if metricsAddr != "" {
		metricsSrv = &http.Server{Addr: metricsAddr, Handler: metricsMux()}
		fmt.Fprintf(os.Stderr, "policyd: metrics and pprof on %s\n", metricsAddr)
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "policyd: metrics serve: %v\n", err)
			}
		}()
	}

	var frameLn net.Listener
	if frameAddr != "" {
		frameLn, err = net.Listen("tcp", frameAddr)
		if err != nil {
			return fmt.Errorf("frame listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "policyd: frame protocol on %s\n", frameLn.Addr())
		go func() {
			if err := policyd.ServeFrames(frameLn, svc); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "policyd: frame serve: %v\n", err)
			}
		}()
	}

	var watchLn net.Listener
	if watchAddr != "" {
		watchLn, err = net.Listen("tcp", watchAddr)
		if err != nil {
			return fmt.Errorf("watch listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "policyd: version watch on %s\n", watchLn.Addr())
		go func() {
			if err := policyd.ServeWatch(watchLn, svc); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "policyd: watch serve: %v\n", err)
			}
		}()
	}

	if advance > 0 {
		go func() {
			ticker := time.NewTicker(advance)
			defer ticker.Stop()
			idx := snapIdx
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				oldIdx := idx
				idx = (idx + 1) % len(corpus.Snapshots)
				compileStart := time.Now()
				// Month advances recompile incrementally against the
				// serving snapshot: unchanged hosts (the vast majority
				// between adjacent months) are reused outright.
				next, err := policyd.FromCorpusIncremental(ctx, c, idx, workers, svc.Current())
				if err != nil {
					fmt.Fprintf(os.Stderr, "policyd: reload: %v\n", err)
					continue
				}
				compileDur := time.Since(compileStart)
				prev := svc.Swap(next)
				// One structured line per swap so reload behavior is
				// greppable and machine-parseable from the daemon log.
				fmt.Fprintf(os.Stderr,
					`{"event":"snapshot_swap","old_version":%q,"old_date":%q,"new_version":%q,"new_date":%q,"compile_ms":%.1f,"hosts":%d,"hosts_reused":%d,"queries_served":%d}`+"\n",
					prev.Version, corpus.Snapshots[oldIdx].Date.Format("2006-01-02"),
					next.Version, corpus.Snapshots[idx].Date.Format("2006-01-02"),
					float64(compileDur.Microseconds())/1000, next.Len(), next.ReusedHosts(), svc.Stats().Queries)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if frameLn != nil {
		frameLn.Close()
	}
	if watchLn != nil {
		watchLn.Close()
	}
	if metricsSrv != nil {
		metricsSrv.Shutdown(shutCtx)
	}
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	st := svc.Stats()
	fmt.Fprintf(os.Stderr, "policyd: served %d decisions from %s; bye\n", st.Queries, st.Version)
	return nil
}
