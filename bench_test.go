// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation, plus the ablations called out in DESIGN.md and
// micro-benchmarks for the hot substrates. Each iteration performs the
// full experiment at a reduced scale; custom metrics report the headline
// numbers so `go test -bench` output doubles as a results summary.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/agents"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/hosting"
	"repro/internal/longitudinal"
	"repro/internal/measure"
	"repro/internal/metatags"
	"repro/internal/netsim"
	"repro/internal/policyd"
	"repro/internal/proxy"
	"repro/internal/robots"
	"repro/internal/scenario"
	"repro/internal/survey"
	"repro/internal/webserver"
)

const benchSeed = 20251028

// benchScale keeps per-iteration corpus work tractable; cmd/somesite runs
// the same pipelines at the paper's full scale.
const benchScale = 0.05

func benchCorpus(b *testing.B) *corpus.Corpus {
	b.Helper()
	c, err := corpus.New(context.Background(), corpus.Config{Seed: benchSeed, Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// benchConfig is the engine configuration for BenchmarkRunAll: every
// registered experiment at bench scale.
func benchConfig() core.Config {
	return core.Config{
		Seed:            benchSeed,
		Scale:           benchScale,
		BlockingSites:   300,
		CloudflareSites: 200,
		Apps:            40,
		Workers:         16,
	}
}

// longitudinalIDs are the experiments the seed's package-global
// longitudinal cache shared one corpus+analysis across; every other
// substrate (blocking surveys, survey population, ablation corpus) was
// rebuilt per experiment in the seed.
var longitudinalIDs = []string{"figure2", "figure3", "figure4", "table3", "table4", "robots-lint"}

// BenchmarkRunAll measures the experiment engine against the seed's
// execution model. The three variants are:
//
//   - seed_path: the seed's sequential loop with the seed's sharing
//     semantics — the six longitudinal-backed experiments share one
//     environment (the seed shared exactly that analysis through a
//     package-global cache), and every other experiment gets a fresh
//     environment, rebuilding its substrates as the seed did (the
//     detector ablation re-runs the full blocking survey, the parser
//     ablation rebuilds its corpus, the survey population regenerates);
//   - sequential: one RunAll with Parallelism 1, so all experiments
//     share all substrates through the Env cache but still run one at
//     a time;
//   - parallel4: the same shared-cache run on a 4-wide worker pool,
//     which additionally overlaps independent experiments when the
//     hardware has cores to spare.
//
// The seed_path/sequential ratio is the win from generalizing the
// seed's single-substrate cache to every substrate, and reproduces on
// any machine; the sequential/parallel4 ratio adds scheduler overlap
// and scales with available cores.
func BenchmarkRunAll(b *testing.B) {
	ctx := context.Background()

	b.Run("seed_path", func(b *testing.B) {
		longitudinal := make(map[string]bool)
		for _, id := range longitudinalIDs {
			longitudinal[id] = true
		}
		for i := 0; i < b.N; i++ {
			// One RunAll = one shared Env for the longitudinal group,
			// mirroring the seed's global longitudinal cache.
			if _, err := core.RunAll(ctx, benchConfig(), core.Options{
				Parallelism: 1,
				IDs:         longitudinalIDs,
				Sink:        core.NewTextSink(io.Discard),
			}); err != nil {
				b.Fatal(err)
			}
			for _, e := range core.Experiments() {
				if longitudinal[e.ID] {
					continue
				}
				// Everything else: a fresh Env per experiment, nothing
				// shared, as in the seed.
				if _, err := core.RunAll(ctx, benchConfig(), core.Options{
					Parallelism: 1,
					IDs:         []string{e.ID},
					Sink:        core.NewTextSink(io.Discard),
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	for _, bc := range []struct {
		name        string
		parallelism int
	}{
		{"sequential", 1},
		{"parallel4", 4},
		{"parallel8", 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := core.RunAll(ctx, benchConfig(), core.Options{
					Parallelism: bc.parallelism,
					Sink:        core.NewTextSink(io.Discard),
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(core.Experiments()) {
					b.Fatalf("ran %d experiments", len(results))
				}
			}
			b.ReportMetric(float64(bc.parallelism), "parallelism")
		})
	}
}

// BenchmarkRunAllSubset measures the engine on the longitudinal-heavy
// subset, where the shared corpus cache does the most work.
func BenchmarkRunAllSubset(b *testing.B) {
	ctx := context.Background()
	ids := longitudinalIDs
	for _, parallelism := range []int{1, 6} {
		b.Run(fmt.Sprintf("parallel%d", parallelism), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunAll(ctx, benchConfig(), core.Options{
					Parallelism: parallelism,
					IDs:         ids,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure2Trend regenerates Figure 2 (full-disallow trends by
// popularity tier) from corpus construction through analysis.
func BenchmarkFigure2Trend(b *testing.B) {
	var last *longitudinal.Result
	for i := 0; i < b.N; i++ {
		c := benchCorpus(b)
		res, err := longitudinal.Analyze(context.Background(), c, 16)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Fig2Top5k.Last().Value, "top5k_end_%")
	b.ReportMetric(last.Fig2Other.Last().Value, "other_end_%")
}

// BenchmarkFigure3PerAgent regenerates Figure 3 (per-agent restriction
// curves); the analysis is shared with Figure 2, so this measures the
// same pipeline and reports the per-agent headline.
func BenchmarkFigure3PerAgent(b *testing.B) {
	var last *longitudinal.Result
	for i := 0; i < b.N; i++ {
		c := benchCorpus(b)
		res, err := longitudinal.Analyze(context.Background(), c, 16)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Fig3["GPTBot"].Last().Value, "gptbot_end_%")
	b.ReportMetric(last.Fig3["CCBot"].Last().Value, "ccbot_end_%")
}

// BenchmarkFigure4AllowRemoval regenerates Figure 4 (explicit allows and
// removal events) and reports the GPTBot-removal total.
func BenchmarkFigure4AllowRemoval(b *testing.B) {
	var last *longitudinal.Result
	for i := 0; i < b.N; i++ {
		c := benchCorpus(b)
		res, err := longitudinal.Analyze(context.Background(), c, 16)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Fig4Allowed.Last().Value, "allowed_end")
	b.ReportMetric(float64(last.GPTBotRemovals), "gptbot_removals")
}

// BenchmarkTable1Respect runs the §5 passive study end to end: two
// instrumented sites, the crawler fleet over real HTTP, and log-based
// classification.
func BenchmarkTable1Respect(b *testing.B) {
	var respected int
	for i := 0; i < b.N; i++ {
		res, err := measure.RunPassive(context.Background(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		respected = 0
		for _, v := range res.Verdicts {
			if v == measure.Respected {
				respected++
			}
		}
	}
	b.ReportMetric(float64(respected), "respecting_crawlers")
}

// BenchmarkActiveAssistants runs the §5.2.2 active study: built-in
// assistants plus the GPT-app fleet and crawler deduplication.
func BenchmarkActiveAssistants(b *testing.B) {
	var distinct int
	for i := 0; i < b.N; i++ {
		res, err := measure.RunActive(context.Background(), benchSeed, 60)
		if err != nil {
			b.Fatal(err)
		}
		distinct = res.DistinctCrawlers
	}
	b.ReportMetric(float64(distinct), "distinct_crawlers")
}

// BenchmarkTable2Hosting regenerates Table 2: population generation, DNS
// identification, robots.txt rendering and categorization.
func BenchmarkTable2Hosting(b *testing.B) {
	var sqPct float64
	for i := 0; i < b.N; i++ {
		pop := hosting.GeneratePopulation(0, benchSeed)
		rows := hosting.Table2(pop)
		for _, r := range rows {
			if r.Provider == "Squarespace" {
				sqPct = r.DisallowAIPct
			}
		}
	}
	b.ReportMetric(sqPct, "squarespace_disallow_%")
}

// BenchmarkTable3Snapshots regenerates the snapshot-coverage table.
func BenchmarkTable3Snapshots(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		total = 0
		for k := range corpus.Snapshots {
			sites, _ := c.PresenceCounts(k)
			total += sites
		}
	}
	b.ReportMetric(float64(total), "site_observations")
}

// BenchmarkTable4ExplicitAllow measures the explicit-allow extraction.
func BenchmarkTable4ExplicitAllow(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		c := benchCorpus(b)
		res, err := longitudinal.Analyze(context.Background(), c, 16)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Table4)
	}
	b.ReportMetric(float64(rows), "gptbot_allowers")
}

// BenchmarkSurveyTables regenerates Tables 5–8 and the codebook tables.
func BenchmarkSurveyTables(b *testing.B) {
	var top5 int
	for i := 0; i < b.N; i++ {
		pop := survey.Generate(benchSeed)
		pop.Table5()
		pop.Table6()
		t7 := pop.Table7()
		pop.Table8()
		for _, q := range survey.Questions() {
			pop.ThemeCounts(q)
		}
		top5 = 0
		for j := 0; j < 5 && j < len(t7); j++ {
			top5 += t7[j].Count
		}
	}
	b.ReportMetric(float64(top5), "top5_art_selections")
}

// BenchmarkSurveyHeadline regenerates the §4.2–4.3 headline statistics.
func BenchmarkSurveyHeadline(b *testing.B) {
	var pctNever float64
	for i := 0; i < b.N; i++ {
		pop := survey.Generate(benchSeed)
		h := pop.ComputeHeadline()
		pctNever = h.NeverHeardRobotsPct
	}
	b.ReportMetric(pctNever, "never_heard_%")
}

// BenchmarkNoAIMetaScan scans the 10k-homepage population for NoAI tags.
func BenchmarkNoAIMetaScan(b *testing.B) {
	pages := metatags.GenerateHomepages(metatags.PaperTopN,
		metatags.PaperNoAI, metatags.PaperNoImageAI, benchSeed)
	var bytes int64
	for _, p := range pages {
		bytes += int64(len(p))
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	var found int
	for i := 0; i < b.N; i++ {
		res := metatags.ScanAll(pages)
		found = res.NoAI
	}
	b.ReportMetric(float64(found), "noai_sites")
}

// BenchmarkActiveBlockingSurvey runs the §6.2 survey: hosting a site
// population and differential-probing every site over real HTTP.
func BenchmarkActiveBlockingSurvey(b *testing.B) {
	var blockers int
	for i := 0; i < b.N; i++ {
		res, err := blocking.RunSurvey(context.Background(), 400, benchSeed, 16, blocking.DefaultDetector)
		if err != nil {
			b.Fatal(err)
		}
		blockers = res.ActiveBlockers
	}
	b.ReportMetric(float64(blockers), "active_blockers")
}

// BenchmarkCloudflareGreyBox replays 614 user agents against a proxied
// site with the Block AI feature off and on (§6.3 rule inference).
func BenchmarkCloudflareGreyBox(b *testing.B) {
	var blocked int
	for i := 0; i < b.N; i++ {
		res, err := proxy.RunGreyBox(benchSeed, 590)
		if err != nil {
			b.Fatal(err)
		}
		blocked = len(res.BlockedTokens)
	}
	b.ReportMetric(float64(blocked), "blocked_tokens")
}

// BenchmarkFigure7Inference classifies a Cloudflare site population with
// the Figure 7 flow.
func BenchmarkFigure7Inference(b *testing.B) {
	var onRate float64
	for i := 0; i < b.N; i++ {
		res, err := proxy.RunInferenceSurvey(context.Background(), 400, benchSeed, 16)
		if err != nil {
			b.Fatal(err)
		}
		onRate = res.OnRate()
	}
	b.ReportMetric(100*onRate, "adoption_%")
}

// BenchmarkRobotsLint measures the §8.1 mistake-rate pass over rendered
// corpus files.
func BenchmarkRobotsLint(b *testing.B) {
	c := benchCorpus(b)
	sites := c.Sites()
	b.ResetTimer()
	var mistakes int
	for i := 0; i < b.N; i++ {
		mistakes = 0
		for _, s := range sites {
			if robots.Lint(c.RobotsBody(s, len(corpus.Snapshots)-1)).Mistakes > 0 {
				mistakes++
			}
		}
	}
	b.ReportMetric(100*float64(mistakes)/float64(len(sites)), "mistake_%")
}

// BenchmarkRobotsParse measures parser throughput on a realistic file.
func BenchmarkRobotsParse(b *testing.B) {
	body := buildLargeRobots()
	b.SetBytes(int64(len(body)))
	for i := 0; i < b.N; i++ {
		rb := robots.ParseString(body)
		if len(rb.Groups) == 0 {
			b.Fatal("parse produced no groups")
		}
	}
}

// BenchmarkRobotsMatch measures access-decision throughput.
func BenchmarkRobotsMatch(b *testing.B) {
	rb := robots.ParseString(buildLargeRobots())
	paths := []string{"/", "/gallery/piece.png", "/blog/2024/post?q=1",
		"/search", "/deep/nested/path/file.php"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Allowed("GPTBot", paths[i%len(paths)])
	}
}

// BenchmarkAblationParserModes parses the same corpus under all four
// parser profiles, quantifying the §8.1 measurement-error finding.
func BenchmarkAblationParserModes(b *testing.B) {
	c := benchCorpus(b)
	profiles := []robots.Profile{
		robots.ProfileGoogle, robots.ProfileStrictRFC,
		robots.ProfileLegacyBuggy, robots.ProfileClassic1994,
	}
	last := len(corpus.Snapshots) - 1
	bodies := make([]string, 0, len(c.Sites()))
	for _, s := range c.Sites() {
		bodies = append(bodies, c.RobotsBody(s, last))
	}
	b.ResetTimer()
	counts := make([]int, len(profiles))
	for i := 0; i < b.N; i++ {
		for pi, p := range profiles {
			pairs := 0
			for _, body := range bodies {
				rb := robots.ParseStringProfile(body, p)
				pairs += table1RestrictionPairs(rb)
			}
			counts[pi] = pairs
		}
	}
	if counts[0] > 0 {
		b.ReportMetric(100*float64(counts[2])/float64(counts[0]), "buggy_vs_google_%")
	}
}

// BenchmarkAblationPrecedence compares longest-match vs first-match rule
// precedence on access decisions.
func BenchmarkAblationPrecedence(b *testing.B) {
	body := buildLargeRobots()
	google := robots.ParseStringProfile(body, robots.ProfileGoogle)
	classic := robots.ParseStringProfile(body, robots.ProfileClassic1994)
	paths := []string{"/shop/public/item", "/gallery/x.png", "/blog/post"}
	var divergent int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := paths[i%len(paths)]
		// RandomBot is governed by the wildcard group, where rule order
		// and longest-match semantics actually diverge.
		if google.Allowed("RandomBot", p) != classic.Allowed("RandomBot", p) {
			divergent++
		}
	}
	b.ReportMetric(float64(divergent)/float64(b.N), "divergence_rate")
}

// BenchmarkAblationDetectorFeatures runs the §6.1 survey with the full
// detector and the status-only detector, reporting the undercount.
func BenchmarkAblationDetectorFeatures(b *testing.B) {
	var fullN, statusN int
	for i := 0; i < b.N; i++ {
		full, err := blocking.RunSurvey(context.Background(), 300, benchSeed, 16, blocking.DefaultDetector)
		if err != nil {
			b.Fatal(err)
		}
		statusOnly, err := blocking.RunSurvey(context.Background(), 300, benchSeed, 16, blocking.StatusOnlyDetector)
		if err != nil {
			b.Fatal(err)
		}
		fullN, statusN = full.ActiveBlockers, statusOnly.ActiveBlockers
	}
	if fullN > 0 {
		b.ReportMetric(100*float64(statusN)/float64(fullN), "status_only_recall_%")
	}
}

// BenchmarkAblationCorpusScale runs the longitudinal pipeline at two
// scales to expose its scaling behaviour.
func BenchmarkAblationCorpusScale(b *testing.B) {
	for _, scale := range []struct {
		name  string
		scale float64
	}{{"scale_0.02", 0.02}, {"scale_0.10", 0.10}} {
		b.Run(scale.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := corpus.New(context.Background(), corpus.Config{Seed: benchSeed, Scale: scale.scale})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := longitudinal.Analyze(context.Background(), c, 16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioEngine runs the observed-world counterfactual
// simulation end to end — per-site discrete-event loops, real HTTP crawl
// waves, log-window analysis — across worker counts. Output is
// bit-identical at every setting; the spread is pure scheduling.
func BenchmarkScenarioEngine(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			var visits int
			for i := 0; i < b.N; i++ {
				res, err := scenario.Run(context.Background(),
					scenario.Observed(benchSeed, 32, 24), workers)
				if err != nil {
					b.Fatal(err)
				}
				visits = res.TotalVisits
			}
			b.ReportMetric(float64(visits), "crawl_visits")
		})
	}
}

// BenchmarkNetsimHTTP measures substrate round-trip cost: one HTTP
// request over the in-memory network per iteration, with the body
// drained the way every crawler and prober in the codebase does (a
// drained body is what lets the transport pool the connection).
func BenchmarkNetsimHTTP(b *testing.B) {
	nw := netsim.New()
	farm, err := webserver.NewFarm(nw, "203.0.113.240")
	if err != nil {
		b.Fatal(err)
	}
	defer farm.Close()
	site, err := farm.StartSite(webserver.WildcardDisallowSite("bench.test", "203.0.113.200"))
	if err != nil {
		b.Fatal(err)
	}
	client := nw.HTTPClient("198.51.100.250")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(site.URL() + "/robots.txt")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkNetsimHTTPLegacyFraming is the same request loop with the
// stdlib net/http client and server framing restored on both ends, so
// the netsim-native fast path's win is visible in one bench run.
func BenchmarkNetsimHTTPLegacyFraming(b *testing.B) {
	netsim.SetLegacyNetHTTP(true)
	defer netsim.SetLegacyNetHTTP(false)
	nw := netsim.New()
	farm, err := webserver.NewFarm(nw, "203.0.113.240")
	if err != nil {
		b.Fatal(err)
	}
	defer farm.Close()
	site, err := farm.StartSite(webserver.WildcardDisallowSite("bench-frames.test", "203.0.113.201"))
	if err != nil {
		b.Fatal(err)
	}
	client := nw.HTTPClient("198.51.100.249")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(site.URL() + "/robots.txt")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkNetsimHTTPLegacyDial is the same request loop over the
// compatibility transport that dials a fresh connection per request —
// the pre-optimization behaviour — so the pooling win is visible in one
// bench run.
func BenchmarkNetsimHTTPLegacyDial(b *testing.B) {
	netsim.SetLegacyPerRequestDial(true)
	defer netsim.SetLegacyPerRequestDial(false)
	nw := netsim.New()
	site, err := webserver.Start(nw, webserver.WildcardDisallowSite("bench-legacy.test", "203.0.113.202"))
	if err != nil {
		b.Fatal(err)
	}
	defer site.Close()
	client := nw.HTTPClient("198.51.100.251")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(site.URL() + "/robots.txt")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkFarmSiteStartup measures the cost of standing up (and
// tearing down) one survey site — the operation the blocking/proxy
// surveys repeat thousands of times per run. Farm hosting turns the
// per-site listener + accept loop + http.Server of the legacy path into
// a map insert plus an IP alias.
func BenchmarkFarmSiteStartup(b *testing.B) {
	for _, legacy := range []bool{false, true} {
		name := "farm"
		if legacy {
			name = "legacy"
		}
		b.Run(name, func(b *testing.B) {
			webserver.SetLegacyPerSiteHosting(legacy)
			defer webserver.SetLegacyPerSiteHosting(false)
			nw := netsim.New()
			farm, err := webserver.NewFarm(nw, "203.0.113.240")
			if err != nil {
				b.Fatal(err)
			}
			defer farm.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				site, err := farm.StartSite(webserver.Config{
					Domain: "startup.test", IP: "203.0.113.203",
					Pages: webserver.ContentPages("startup.test"),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := site.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCrawlerSiteCrawl measures one full compliant crawl of the
// measurement site.
func BenchmarkCrawlerSiteCrawl(b *testing.B) {
	nw := netsim.New()
	farm, err := webserver.NewFarm(nw, "203.0.113.240")
	if err != nil {
		b.Fatal(err)
	}
	defer farm.Close()
	site, err := farm.StartSite(webserver.Config{
		Domain: "crawlbench.test", IP: "203.0.113.201",
		Pages: webserver.ContentPages("crawlbench.test"),
	})
	if err != nil {
		b.Fatal(err)
	}
	cr, err := crawler.New(nw, crawler.Profile{
		Token: "GPTBot", SourceIP: "24.0.1.99", Behavior: crawler.Compliant,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cr.Crawl(ctx, site.URL()); err != nil {
			b.Fatal(err)
		}
	}
}

// table1RestrictionPairs counts (site, agent) explicit restrictions for
// all Table 1 agents — the ablation metric where buggy parsers lose the
// grouped User-agent lines they dropped.
func table1RestrictionPairs(rb *robots.Robots) int {
	pairs := 0
	for _, a := range agents.Table1 {
		if lvl, explicit := rb.ExplicitRestriction(a.UserAgent); explicit && lvl.Restricted() {
			pairs++
		}
	}
	return pairs
}

// buildLargeRobots renders a realistic robots.txt with many groups.
func buildLargeRobots() string {
	bld := robots.NewBuilder()
	bld.Comment("benchmark file")
	bld.Group("*").Disallow("/admin/", "/search", "/shop").Allow("/shop/public")
	bld.Group(agents.SquarespaceBlockedAgents...).DisallowAll()
	for _, a := range agents.Table1 {
		bld.Group(a.UserAgent).Disallow("/images/", "/gallery/")
	}
	var extra []string
	for i := 0; i < 20; i++ {
		extra = append(extra, "/generated/path"+strings.Repeat("x", i)+"/")
	}
	bld.Group("Googlebot").Disallow(extra...)
	bld.Sitemap("https://bench.example/sitemap.xml")
	return bld.String()
}

// benchPolicySnapshot compiles the bench corpus's final month into a
// policyd serving index.
func benchPolicySnapshot(b *testing.B) *policyd.Snapshot {
	b.Helper()
	snap, err := policyd.FromCorpus(context.Background(), benchCorpus(b), len(corpus.Snapshots)-1, 16)
	if err != nil {
		b.Fatal(err)
	}
	return snap
}

// benchPolicyQueries is a fixed query mix over snapshot hosts.
func benchPolicyQueries(snap *policyd.Snapshot) []policyd.Query {
	hosts := snap.Hosts()
	mix := []string{"GPTBot", "ClaudeBot", "CCBot", "Bytespider", "Googlebot"}
	paths := []string{"/", "/about.html", "/images/art.png", "/admin/panel", "/gallery/p.jpg"}
	qs := make([]policyd.Query, 4096)
	for i := range qs {
		qs[i] = policyd.Query{
			Host:  hosts[(i*31)%len(hosts)],
			Agent: mix[i%len(mix)],
			Path:  paths[(i/len(mix))%len(paths)],
		}
	}
	return qs
}

// BenchmarkPolicydDecide measures the single-decision hot path: host
// and agent in the compiled index, zero allocations per op.
func BenchmarkPolicydDecide(b *testing.B) {
	snap := benchPolicySnapshot(b)
	svc := policyd.NewService(snap)
	qs := benchPolicyQueries(snap)
	for _, q := range qs {
		svc.Decide(q) // warm
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.Decide(qs[i%len(qs)])
	}
}

// BenchmarkPolicydDecideBatch measures the batched path with a reused
// output buffer, the shape cmd/loadgen and the batch API drive.
func BenchmarkPolicydDecideBatch(b *testing.B) {
	snap := benchPolicySnapshot(b)
	svc := policyd.NewService(snap)
	qs := benchPolicyQueries(snap)[:64]
	out := make([]policyd.Decision, 0, len(qs))
	out = svc.DecideBatch(qs, out[:0]) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = svc.DecideBatch(qs, out[:0])
	}
	b.ReportMetric(float64(len(qs)), "decisions/op")
}

// BenchmarkPolicydCompile measures snapshot compilation — the hot-
// reload cost when a corpus month advances.
func BenchmarkPolicydCompile(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	var hosts int
	for i := 0; i < b.N; i++ {
		snap, err := policyd.FromCorpus(context.Background(), c, len(corpus.Snapshots)-1, 16)
		if err != nil {
			b.Fatal(err)
		}
		hosts = snap.Len()
	}
	b.ReportMetric(float64(hosts), "hosts")
}

// BenchmarkPolicydHTTP measures one decision through the JSON API over
// netsim — the in-harness serving cost including transport framing.
func BenchmarkPolicydHTTP(b *testing.B) {
	snap := benchPolicySnapshot(b)
	svc := policyd.NewService(snap)
	nw := netsim.New()
	ln, err := nw.Listen("203.0.113.220", 80)
	if err != nil {
		b.Fatal(err)
	}
	nw.Register("policyd-bench.test", "203.0.113.220")
	srv := &http.Server{Handler: policyd.NewHandler(svc)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-done
	}()
	client := nw.HTTPClient("198.51.100.220")
	hosts := snap.Hosts()
	url := "http://policyd-bench.test/v1/decide?agent=GPTBot&path=/about.html&host="
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(url + hosts[i%len(hosts)])
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkPolicydFrameBatch serves 64-query batches over the binary
// frame protocol on netsim — the wire the load generator uses with
// -wire binary. Compare against BenchmarkPolicydHTTP (JSON, one query
// per request) for the framing + batching win.
func BenchmarkPolicydFrameBatch(b *testing.B) {
	snap := benchPolicySnapshot(b)
	svc := policyd.NewService(snap)
	nw := netsim.New()
	ln, err := nw.Listen("203.0.113.221", 80)
	if err != nil {
		b.Fatal(err)
	}
	go policyd.ServeFrames(ln, svc)
	defer ln.Close()
	conn, err := nw.Dial(context.Background(), "198.51.100.221", "203.0.113.221:80")
	if err != nil {
		b.Fatal(err)
	}
	fc, err := policyd.NewFrameClient(conn)
	if err != nil {
		b.Fatal(err)
	}
	defer fc.Close()
	hosts := snap.Hosts()
	qs := make([]policyd.Query, 64)
	for i := range qs {
		qs[i] = policyd.Query{Host: hosts[(i*31)%len(hosts)], Agent: "GPTBot", Path: "/about.html"}
	}
	out := make([]policyd.Decision, 0, len(qs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err = fc.Decide(qs, out[:0])
		if err != nil || len(out) != len(qs) {
			b.Fatalf("frame batch: %d decisions, err %v", len(out), err)
		}
	}
	b.ReportMetric(float64(len(qs)), "queries_per_op")
}
